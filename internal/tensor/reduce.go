package tensor

import "fmt"

// Batched bias-reduction kernels for the backward pass. A mini-batch's bias
// gradient is a sum over every output position of every sample; these two
// kernels cover the two layouts the batched backward produces, with
// accumulation orders chosen to reproduce the per-sample backward chains
// exactly (so batched and per-sample bias gradients stay bit-identical on
// the scalar path):
//
//   - AddRowSums reduces an F-major (rows) × (groups·groupLen) matrix — the
//     convolution backward's dY layout, one groupLen-long run per
//     (filter, sample) — folding each group's sum into dst as its own
//     chain, exactly as N per-sample backward calls would.
//   - AddColSums reduces a row-major (rows) × (cols) matrix — the dense
//     backward's (N, out) dY layout — folding row after row into dst,
//     exactly as N per-sample backward calls would.
//
// Both are allocation-free and carry no state, so they are safe for
// concurrent use with per-caller buffers.

// AddRowSums accumulates per-row group sums of the row-major
// (rows) × (groups·groupLen) matrix src into dst: for every row r and group
// g, the sum of src[r·groups·groupLen+g·groupLen : …+(g+1)·groupLen]
// (ascending, one float32 chain per group) is added to dst[r]. With
// src = the batched convolution's F-major output gradient (rows = filters,
// groups = batch, groupLen = outH·outW) this is the batched dB reduction,
// bit-identical to per-sample backward (each sample's spatial sum is its own
// chain folded into dst in sample order).
func AddRowSums(dst, src []float32, rows, groups, groupLen int) error {
	if rows < 0 || groups < 0 || groupLen < 0 {
		return fmt.Errorf("tensor: row-sum dims (rows=%d, groups=%d, groupLen=%d) must be >= 0",
			rows, groups, groupLen)
	}
	rowLen := groups * groupLen
	if len(src) < rows*rowLen {
		return fmt.Errorf("tensor: row-sum src length %d < %d for (rows=%d) × (groups=%d)·(groupLen=%d)",
			len(src), rows*rowLen, rows, groups, groupLen)
	}
	if len(dst) < rows {
		return fmt.Errorf("tensor: row-sum dst length %d < rows %d", len(dst), rows)
	}
	for r := 0; r < rows; r++ {
		row := src[r*rowLen : (r+1)*rowLen]
		for g := 0; g < groups; g++ {
			var acc float32
			for _, v := range row[g*groupLen : (g+1)*groupLen] {
				acc += v
			}
			dst[r] += acc
		}
	}
	return nil
}

// AddColSums accumulates column sums of the row-major (rows) × (cols) matrix
// src into dst: dst[c] += src[r·cols+c] for r ascending — row after row
// folded directly into dst, streaming src once. With src = the batched dense
// layer's (N, out) output gradient this is the batched dB reduction,
// bit-identical to per-sample backward (which adds each sample's gradient
// row into dst in sample order).
func AddColSums(dst, src []float32, rows, cols int) error {
	if rows < 0 || cols < 0 {
		return fmt.Errorf("tensor: col-sum dims (rows=%d, cols=%d) must be >= 0", rows, cols)
	}
	if len(src) < rows*cols {
		return fmt.Errorf("tensor: col-sum src length %d < %d for (rows=%d) × (cols=%d)",
			len(src), rows*cols, rows, cols)
	}
	if len(dst) < cols {
		return fmt.Errorf("tensor: col-sum dst length %d < cols %d", len(dst), cols)
	}
	for r := 0; r < rows; r++ {
		row := src[r*cols : (r+1)*cols]
		for c, v := range row {
			dst[c] += v
		}
	}
	return nil
}
