package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The binary format is deliberately simple and versioned:
//
//	magic   [4]byte  "HTN1"  (Hybrid Tensor, version 1)
//	rank    uint32   little endian
//	shape   rank × uint32
//	data    len × float32 (IEEE-754 bits, little endian)
//
// It is used by internal/nn for weight checkpoints and by internal/onnxlite
// for the weight payload of the platform-agnostic model description.

var magic = [4]byte{'H', 'T', 'N', '1'}

// WriteTo serialises t to w in the HTN1 binary format. It implements
// io.WriterTo.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	var n int64
	if err := writeAll(w, magic[:], &n); err != nil {
		return n, fmt.Errorf("tensor: write magic: %w", err)
	}
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(t.shape)))
	if err := writeAll(w, b4[:], &n); err != nil {
		return n, fmt.Errorf("tensor: write rank: %w", err)
	}
	for _, d := range t.shape {
		binary.LittleEndian.PutUint32(b4[:], uint32(d))
		if err := writeAll(w, b4[:], &n); err != nil {
			return n, fmt.Errorf("tensor: write shape: %w", err)
		}
	}
	buf := make([]byte, 4*len(t.data))
	for i, x := range t.data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
	}
	if err := writeAll(w, buf, &n); err != nil {
		return n, fmt.Errorf("tensor: write data: %w", err)
	}
	return n, nil
}

func writeAll(w io.Writer, p []byte, n *int64) error {
	m, err := w.Write(p)
	*n += int64(m)
	return err
}

// maxReadElems bounds a single deserialised tensor at 1 Gi elements so that a
// corrupt header cannot trigger an enormous allocation.
const maxReadElems = 1 << 30

// Read deserialises a tensor from r in the HTN1 binary format.
func Read(r io.Reader) (*Tensor, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("tensor: read magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("tensor: bad magic %q", m[:])
	}
	var b4 [4]byte
	if _, err := io.ReadFull(r, b4[:]); err != nil {
		return nil, fmt.Errorf("tensor: read rank: %w", err)
	}
	rank := binary.LittleEndian.Uint32(b4[:])
	if rank > 16 {
		return nil, fmt.Errorf("tensor: implausible rank %d", rank)
	}
	shape := make([]int, rank)
	n := 1
	for i := range shape {
		if _, err := io.ReadFull(r, b4[:]); err != nil {
			return nil, fmt.Errorf("tensor: read shape: %w", err)
		}
		shape[i] = int(binary.LittleEndian.Uint32(b4[:]))
		if shape[i] > 0 && n > maxReadElems/shape[i] {
			return nil, fmt.Errorf("tensor: shape %v too large", shape)
		}
		n *= shape[i]
	}
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("tensor: read data: %w", err)
	}
	data := make([]float32, n)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return FromSlice(data, shape...)
}
