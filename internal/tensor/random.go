package tensor

import (
	"math"
	"math/rand"
)

// FillUniform fills t with samples from U[lo, hi) drawn from rng.
func (t *Tensor) FillUniform(rng *rand.Rand, lo, hi float32) {
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + rng.Float32()*span
	}
}

// FillNormal fills t with samples from N(mean, stddev²) drawn from rng.
func (t *Tensor) FillNormal(rng *rand.Rand, mean, stddev float32) {
	for i := range t.data {
		t.data[i] = mean + float32(rng.NormFloat64())*stddev
	}
}

// FillHe fills t with He-normal initialised weights for a layer with fanIn
// inputs. This is the standard initialisation for ReLU-activated layers and
// is what the nn package uses for both convolutional and dense weights.
func (t *Tensor) FillHe(rng *rand.Rand, fanIn int) {
	if fanIn < 1 {
		fanIn = 1
	}
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	t.FillNormal(rng, 0, std)
}

// FillXavier fills t with Xavier/Glorot-uniform initialised weights for a
// layer with the given fan-in and fan-out.
func (t *Tensor) FillXavier(rng *rand.Rand, fanIn, fanOut int) {
	if fanIn < 1 {
		fanIn = 1
	}
	if fanOut < 1 {
		fanOut = 1
	}
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	t.FillUniform(rng, -limit, limit)
}
