package tensor

import (
	"fmt"
	"math"
)

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, x := range t.data {
		t.data[i] = f(x)
	}
}

// Map returns a new tensor whose elements are f applied to t's elements.
func (t *Tensor) Map(f func(float32) float32) *Tensor {
	c := t.Clone()
	c.Apply(f)
	return c
}

// AddInPlace adds o element-wise into t.
func (t *Tensor) AddInPlace(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("tensor: add shape mismatch %v != %v", t.shape, o.shape)
	}
	for i, x := range o.data {
		t.data[i] += x
	}
	return nil
}

// SubInPlace subtracts o element-wise from t.
func (t *Tensor) SubInPlace(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("tensor: sub shape mismatch %v != %v", t.shape, o.shape)
	}
	for i, x := range o.data {
		t.data[i] -= x
	}
	return nil
}

// MulElemInPlace multiplies t element-wise by o.
func (t *Tensor) MulElemInPlace(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("tensor: mul shape mismatch %v != %v", t.shape, o.shape)
	}
	for i, x := range o.data {
		t.data[i] *= x
	}
	return nil
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AxpyInPlace computes t += a*o (the BLAS axpy primitive), used by the SGD
// optimiser for momentum updates.
func (t *Tensor) AxpyInPlace(a float32, o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("tensor: axpy shape mismatch %v != %v", t.shape, o.shape)
	}
	for i, x := range o.data {
		t.data[i] += a * x
	}
	return nil
}

// Sum returns the sum of all elements, accumulated in float64 for stability.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, x := range t.data {
		s += float64(x)
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Min returns the smallest element (+Inf for empty tensors).
func (t *Tensor) Min() float32 {
	m := float32(math.Inf(1))
	for _, x := range t.data {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element (-Inf for empty tensors).
func (t *Tensor) Max() float32 {
	m := float32(math.Inf(-1))
	for _, x := range t.data {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMax returns the linear index of the largest element (-1 for empty
// tensors). Ties resolve to the lowest index, which keeps classification
// deterministic.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		return -1
	}
	best, bi := t.data[0], 0
	for i, x := range t.data {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, x := range t.data {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of the flattened tensors, accumulated in
// float64.
func (t *Tensor) Dot(o *Tensor) (float64, error) {
	if len(t.data) != len(o.data) {
		return 0, fmt.Errorf("tensor: dot length mismatch %d != %d", len(t.data), len(o.data))
	}
	var s float64
	for i, x := range t.data {
		s += float64(x) * float64(o.data[i])
	}
	return s, nil
}

// Equal reports exact element-wise equality (and shape equality).
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, x := range t.data {
		if o.data[i] != x {
			return false
		}
	}
	return true
}

// AllClose reports whether every element of t is within atol of the
// corresponding element of o. Shapes must match.
func (t *Tensor) AllClose(o *Tensor, atol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, x := range t.data {
		if math.Abs(float64(x)-float64(o.data[i])) > atol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between t
// and o, or an error on shape mismatch.
func (t *Tensor) MaxAbsDiff(o *Tensor) (float64, error) {
	if !t.SameShape(o) {
		return 0, fmt.Errorf("tensor: diff shape mismatch %v != %v", t.shape, o.shape)
	}
	var m float64
	for i, x := range t.data {
		d := math.Abs(float64(x) - float64(o.data[i]))
		if d > m {
			m = d
		}
	}
	return m, nil
}
