//go:build amd64 && !noasm

package tensor

// CPU-feature detection and microkernel declarations for the AVX2/FMA GEMM
// path. The kernels themselves live in gemm_amd64.s; the packed-panel loop
// nest that drives them is in gemm_packed.go. Building with `-tags noasm`
// (or on any other architecture) removes this file and the package falls
// back to the pure-Go blocked kernels in matmul.go, which are bit-identical
// to the pre-SIMD implementation.

// Implemented in gemm_amd64.s.
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// Implemented in gemm_amd64.s.
func xgetbvAsm() (eax, edx uint32)

// gemmKernel6x16 computes a full 6×16 tile of C += A·B from packed slivers.
// Implemented in gemm_amd64.s.
//
//go:noescape
func gemmKernel6x16(c, a, b *float32, kc, ldc int64)

// gemmKernel6x16Edge is the same kernel with mr valid rows and a 16-lane
// column mask, for tiles that touch a matrix edge. Implemented in
// gemm_amd64.s.
//
//go:noescape
func gemmKernel6x16Edge(c, a, b *float32, kc, ldc, mr int64, mask *int32)

// linearKernel8 computes 8 consecutive Dense outputs of one sample,
// dst[0:rows] = bias + x·wᵀ, with no packing (the Linear shapes are too
// tall-skinny for packing to pay). Implemented in gemm_amd64.s.
//
//go:noescape
func linearKernel8(dst, x, w, bias *float32, ldw, kfull, ktail, rows int64, kmask, omask *int32)

func init() {
	feats := detectX86Features()
	cpuFeatures = feats.list
	// The microkernel needs AVX2 + FMA with OS support for YMM state
	// (OSXSAVE set and XCR0 reporting XMM+YMM enabled).
	if feats.avx2 && feats.fma && feats.osYMM {
		gemmAsmActive = true
		gemmKernelName = "avx2-fma"
	}
}

type x86Features struct {
	avx2, fma, osYMM bool
	list             string
}

func detectX86Features() x86Features {
	var f x86Features
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 1 {
		return f
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const (
		bitFMA     = 1 << 12
		bitOSXSAVE = 1 << 27
		bitAVX     = 1 << 28
	)
	avx := ecx1&bitAVX != 0
	f.fma = ecx1&bitFMA != 0
	if ecx1&bitOSXSAVE != 0 {
		xcr0, _ := xgetbvAsm()
		f.osYMM = xcr0&0x6 == 0x6 // XMM and YMM state enabled by the OS
	}
	var avx2, avx512f bool
	if maxLeaf >= 7 {
		_, ebx7, _, _ := cpuidAsm(7, 0)
		avx2 = ebx7&(1<<5) != 0
		avx512f = ebx7&(1<<16) != 0
	}
	f.avx2 = avx2
	list := ""
	add := func(ok bool, name string) {
		if !ok {
			return
		}
		if list != "" {
			list += ","
		}
		list += name
	}
	add(avx, "avx")
	add(avx2, "avx2")
	add(f.fma, "fma")
	add(avx512f, "avx512f")
	f.list = list
	return f
}
