package tensor

import (
	"math/rand"
	"strings"
	"testing"
)

// TestCol2imBatchMatchesPerSample pins the batched scatter against N
// independent Col2im calls: sample s's column range must land bit-for-bit in
// sample s's CHW plane, across ragged batch sizes and strided/padded shapes.
func TestCol2imBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, tc := range []struct{ n, c, h, w, k, stride, pad int }{
		{1, 1, 5, 5, 3, 1, 0},
		{2, 3, 8, 8, 3, 1, 1},
		{5, 2, 9, 7, 3, 2, 1},
		{3, 3, 11, 11, 5, 2, 0},
		{4, 1, 6, 6, 2, 2, 0},
		{13, 2, 7, 7, 3, 1, 1},
	} {
		outH := ConvOut(tc.h, tc.k, tc.stride, tc.pad)
		outW := ConvOut(tc.w, tc.k, tc.stride, tc.pad)
		hw := outH * outW
		ckk := tc.c * tc.k * tc.k
		chw := tc.c * tc.h * tc.w
		cols := randSlice(rng, ckk*tc.n*hw)
		got := make([]float32, tc.n*chw)
		if err := Col2imBatch(got, cols, tc.n, tc.c, tc.h, tc.w, tc.k, tc.stride, tc.pad); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < tc.n; s++ {
			// Gather sample s's columns back into the per-sample layout.
			one := make([]float32, ckk*hw)
			for r := 0; r < ckk; r++ {
				copy(one[r*hw:(r+1)*hw], cols[r*tc.n*hw+s*hw:r*tc.n*hw+(s+1)*hw])
			}
			want := make([]float32, chw)
			if err := Col2im(want, one, tc.c, tc.h, tc.w, tc.k, tc.stride, tc.pad); err != nil {
				t.Fatal(err)
			}
			for i, v := range want {
				if got[s*chw+i] != v {
					t.Fatalf("%+v sample %d elem %d: batch %v != per-sample %v",
						tc, s, i, got[s*chw+i], v)
				}
			}
		}
	}
}

// TestCol2imBatchAccumulates pins the accumulate-don't-clear contract: a
// second scatter into the same dst doubles it.
func TestCol2imBatchAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n, c, h, w, k := 2, 2, 6, 6, 3
	outH := ConvOut(h, k, 1, 1)
	// Small integers keep every partial sum exactly representable, so the
	// doubling check is exact rather than tolerance-based.
	cols := make([]float32, c*k*k*n*outH*outH)
	for i := range cols {
		cols[i] = float32(rng.Intn(17) - 8)
	}
	once := make([]float32, n*c*h*w)
	if err := Col2imBatch(once, cols, n, c, h, w, k, 1, 1); err != nil {
		t.Fatal(err)
	}
	twice := make([]float32, n*c*h*w)
	for range [2]int{} {
		if err := Col2imBatch(twice, cols, n, c, h, w, k, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := range once {
		if twice[i] != 2*once[i] {
			t.Fatalf("elem %d: second scatter gave %v, want %v", i, twice[i], 2*once[i])
		}
	}
}

func TestCol2imBatchErrorsNameDims(t *testing.T) {
	dst := make([]float32, 2*3*8*8)
	err := Col2imBatch(dst, make([]float32, 1), 2, 3, 8, 8, 3, 1, 1)
	if err == nil {
		t.Fatal("undersized cols accepted")
	}
	for _, want := range []string{"batch 2", "(3,8,8)", "kernel 3", "stride 1", "pad 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}
	big := make([]float32, 3*3*3*2*8*8)
	if err := Col2imBatch(make([]float32, 1), big, 2, 3, 8, 8, 3, 1, 1); err == nil {
		t.Fatal("undersized dst accepted")
	} else if !strings.Contains(err.Error(), "dst length 1") {
		t.Fatalf("dst error %q does not name the length", err)
	}
	if err := Col2imBatch(dst, big, 0, 3, 8, 8, 3, 1, 1); err == nil {
		t.Fatal("batch 0 accepted")
	}
	if err := Col2imBatch(dst, big, 1, 3, 8, 8, 9, 1, 0); err == nil ||
		!strings.Contains(err.Error(), "does not fit") {
		t.Fatalf("oversized kernel error %v", err)
	}
}

func TestAddRowSums(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	rows, groups, groupLen := 4, 3, 7
	src := randSlice(rng, rows*groups*groupLen)
	got := randSlice(rng, rows) // pre-seeded: kernel must accumulate, not assign
	want := append([]float32(nil), got...)
	if err := AddRowSums(got, src, rows, groups, groupLen); err != nil {
		t.Fatal(err)
	}
	// Reference: the per-sample backward chain — one float32 accumulator per
	// (row, group), folded into dst in group order.
	for r := 0; r < rows; r++ {
		for g := 0; g < groups; g++ {
			var acc float32
			for i := 0; i < groupLen; i++ {
				acc += src[(r*groups+g)*groupLen+i]
			}
			want[r] += acc
		}
	}
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("row %d: %v != %v", r, got[r], want[r])
		}
	}
}

func TestAddColSums(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rows, cols := 5, 9
	src := randSlice(rng, rows*cols)
	got := randSlice(rng, cols)
	want := append([]float32(nil), got...)
	if err := AddColSums(got, src, rows, cols); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			want[c] += src[r*cols+c]
		}
	}
	for c := range want {
		if got[c] != want[c] {
			t.Fatalf("col %d: %v != %v", c, got[c], want[c])
		}
	}
}

func TestReduceErrorsNameDims(t *testing.T) {
	if err := AddRowSums(make([]float32, 4), make([]float32, 1), 4, 3, 7); err == nil ||
		!strings.Contains(err.Error(), "rows=4") || !strings.Contains(err.Error(), "groupLen=7") {
		t.Fatalf("row-sum src error %v does not name dims", err)
	}
	if err := AddRowSums(make([]float32, 1), make([]float32, 4*3*7), 4, 3, 7); err == nil ||
		!strings.Contains(err.Error(), "rows 4") {
		t.Fatalf("row-sum dst error %v does not name rows", err)
	}
	if err := AddRowSums(make([]float32, 4), make([]float32, 84), -1, 3, 7); err == nil {
		t.Fatal("negative rows accepted")
	}
	if err := AddColSums(make([]float32, 9), make([]float32, 1), 5, 9); err == nil ||
		!strings.Contains(err.Error(), "rows=5") || !strings.Contains(err.Error(), "cols=9") {
		t.Fatalf("col-sum src error %v does not name dims", err)
	}
	if err := AddColSums(make([]float32, 1), make([]float32, 45), 5, 9); err == nil ||
		!strings.Contains(err.Error(), "cols 9") {
		t.Fatalf("col-sum dst error %v does not name cols", err)
	}
	if err := AddColSums(make([]float32, 9), make([]float32, 45), 5, -2); err == nil {
		t.Fatal("negative cols accepted")
	}
}
