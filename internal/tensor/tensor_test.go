package tensor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	cases := []struct {
		shape   []int
		wantLen int
	}{
		{[]int{}, 1},
		{[]int{0}, 0},
		{[]int{5}, 5},
		{[]int{2, 3}, 6},
		{[]int{3, 4, 5}, 60},
		{[]int{2, 3, 4, 5}, 120},
	}
	for _, c := range cases {
		tn, err := New(c.shape...)
		if err != nil {
			t.Fatalf("New(%v): %v", c.shape, err)
		}
		if tn.Len() != c.wantLen {
			t.Errorf("New(%v).Len() = %d, want %d", c.shape, tn.Len(), c.wantLen)
		}
		if tn.Rank() != len(c.shape) {
			t.Errorf("New(%v).Rank() = %d, want %d", c.shape, tn.Rank(), len(c.shape))
		}
	}
}

func TestNewNegativeDim(t *testing.T) {
	if _, err := New(2, -1); err == nil {
		t.Fatal("New(2,-1) should fail")
	}
}

func TestFromSliceLengthMismatch(t *testing.T) {
	if _, err := FromSlice(make([]float32, 5), 2, 3); err == nil {
		t.Fatal("FromSlice with wrong length should fail")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	tn := MustNew(2, 3, 4)
	v := float32(0)
	for c := 0; c < 2; c++ {
		for h := 0; h < 3; h++ {
			for w := 0; w < 4; w++ {
				tn.Set(v, c, h, w)
				v++
			}
		}
	}
	v = 0
	for c := 0; c < 2; c++ {
		for h := 0; h < 3; h++ {
			for w := 0; w < 4; w++ {
				if got := tn.At(c, h, w); got != v {
					t.Fatalf("At(%d,%d,%d) = %v, want %v", c, h, w, got, v)
				}
				if got := tn.At3(c, h, w); got != v {
					t.Fatalf("At3(%d,%d,%d) = %v, want %v", c, h, w, got, v)
				}
				v++
			}
		}
	}
}

func TestAt4MatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tn := MustNew(3, 2, 4, 5)
	tn.FillUniform(rng, -1, 1)
	for n := 0; n < 3; n++ {
		for c := 0; c < 2; c++ {
			for h := 0; h < 4; h++ {
				for w := 0; w < 5; w++ {
					if tn.At4(n, c, h, w) != tn.At(n, c, h, w) {
						t.Fatalf("At4 disagrees with At at (%d,%d,%d,%d)", n, c, h, w)
					}
				}
			}
		}
	}
}

func TestSet3Set4(t *testing.T) {
	t3 := MustNew(2, 3, 4)
	t3.Set3(7, 1, 2, 3)
	if t3.At(1, 2, 3) != 7 {
		t.Error("Set3 did not store at expected index")
	}
	t4 := MustNew(2, 3, 4, 5)
	t4.Set4(9, 1, 2, 3, 4)
	if t4.At(1, 2, 3, 4) != 9 {
		t.Error("Set4 did not store at expected index")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
	if !a.SameShape(b) {
		t.Error("Clone changed shape")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, err := a.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Set(42, 0, 0)
	if a.At(0, 0) != 42 {
		t.Error("Reshape should share storage")
	}
	if _, err := a.Reshape(4, 2); err == nil {
		t.Error("Reshape to wrong element count should fail")
	}
}

func TestChannelView(t *testing.T) {
	a := MustNew(3, 2, 2)
	for i := range a.Data() {
		a.Data()[i] = float32(i)
	}
	ch, err := a.Channel(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.At(0, 0); got != 4 {
		t.Errorf("Channel(1).At(0,0) = %v, want 4", got)
	}
	ch.Set(-1, 1, 1)
	if a.At(1, 1, 1) != -1 {
		t.Error("Channel view should share storage")
	}
	if _, err := a.Channel(3); err == nil {
		t.Error("out-of-range channel should fail")
	}
	if _, err := MustNew(2, 2).Channel(0); err == nil {
		t.Error("Channel on rank-2 tensor should fail")
	}
}

func TestFilterView(t *testing.T) {
	a := MustNew(2, 3, 2, 2)
	for i := range a.Data() {
		a.Data()[i] = float32(i)
	}
	f, err := a.Filter(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.At(0, 0, 0); got != 12 {
		t.Errorf("Filter(1).At(0,0,0) = %v, want 12", got)
	}
	if _, err := a.Filter(2); err == nil {
		t.Error("out-of-range filter should fail")
	}
	if _, err := MustNew(2, 2).Filter(0); err == nil {
		t.Error("Filter on rank-2 tensor should fail")
	}
}

func TestArithmetic(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 4)
	b := MustFromSlice([]float32{10, 20, 30, 40}, 4)
	if err := a.AddInPlace(b); err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 22, 33, 44}
	for i, w := range want {
		if a.Data()[i] != w {
			t.Fatalf("AddInPlace[%d] = %v, want %v", i, a.Data()[i], w)
		}
	}
	if err := a.SubInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.Data()[2] != 3 {
		t.Errorf("SubInPlace got %v, want 3", a.Data()[2])
	}
	if err := a.MulElemInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.Data()[3] != 160 {
		t.Errorf("MulElemInPlace got %v, want 160", a.Data()[3])
	}
	a.Scale(0.5)
	if a.Data()[3] != 80 {
		t.Errorf("Scale got %v, want 80", a.Data()[3])
	}
	mismatch := MustNew(3)
	if err := a.AddInPlace(mismatch); err == nil {
		t.Error("AddInPlace shape mismatch should fail")
	}
	if err := a.SubInPlace(mismatch); err == nil {
		t.Error("SubInPlace shape mismatch should fail")
	}
	if err := a.MulElemInPlace(mismatch); err == nil {
		t.Error("MulElemInPlace shape mismatch should fail")
	}
	if err := a.AxpyInPlace(1, mismatch); err == nil {
		t.Error("AxpyInPlace shape mismatch should fail")
	}
}

func TestAxpy(t *testing.T) {
	a := MustFromSlice([]float32{1, 1}, 2)
	b := MustFromSlice([]float32{2, 4}, 2)
	if err := a.AxpyInPlace(0.5, b); err != nil {
		t.Fatal(err)
	}
	if a.Data()[0] != 2 || a.Data()[1] != 3 {
		t.Errorf("Axpy got %v, want [2 3]", a.Data())
	}
}

func TestReductions(t *testing.T) {
	a := MustFromSlice([]float32{-3, 1, 4, 2}, 4)
	if a.Sum() != 4 {
		t.Errorf("Sum = %v, want 4", a.Sum())
	}
	if a.Mean() != 1 {
		t.Errorf("Mean = %v, want 1", a.Mean())
	}
	if a.Min() != -3 {
		t.Errorf("Min = %v, want -3", a.Min())
	}
	if a.Max() != 4 {
		t.Errorf("Max = %v, want 4", a.Max())
	}
	if a.ArgMax() != 2 {
		t.Errorf("ArgMax = %v, want 2", a.ArgMax())
	}
	empty := MustNew(0)
	if empty.ArgMax() != -1 {
		t.Error("ArgMax of empty should be -1")
	}
	if empty.Mean() != 0 {
		t.Error("Mean of empty should be 0")
	}
}

func TestArgMaxTieBreaksLow(t *testing.T) {
	a := MustFromSlice([]float32{5, 5, 5}, 3)
	if a.ArgMax() != 0 {
		t.Errorf("ArgMax tie = %d, want 0", a.ArgMax())
	}
}

func TestDotAndNorm(t *testing.T) {
	a := MustFromSlice([]float32{3, 4}, 2)
	if a.L2Norm() != 5 {
		t.Errorf("L2Norm = %v, want 5", a.L2Norm())
	}
	b := MustFromSlice([]float32{1, 2}, 2)
	d, err := a.Dot(b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 11 {
		t.Errorf("Dot = %v, want 11", d)
	}
	if _, err := a.Dot(MustNew(3)); err == nil {
		t.Error("Dot length mismatch should fail")
	}
}

func TestComparisons(t *testing.T) {
	a := MustFromSlice([]float32{1, 2}, 2)
	b := MustFromSlice([]float32{1, 2.0005}, 2)
	if a.Equal(b) {
		t.Error("Equal should be exact")
	}
	if !a.AllClose(b, 1e-3) {
		t.Error("AllClose(1e-3) should hold")
	}
	if a.AllClose(b, 1e-6) {
		t.Error("AllClose(1e-6) should fail")
	}
	d, err := a.MaxAbsDiff(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.0005) > 1e-6 {
		t.Errorf("MaxAbsDiff = %v, want ~0.0005", d)
	}
	if _, err := a.MaxAbsDiff(MustNew(3)); err == nil {
		t.Error("MaxAbsDiff shape mismatch should fail")
	}
	if a.Equal(MustNew(3)) {
		t.Error("Equal with different shapes should be false")
	}
}

func TestApplyMap(t *testing.T) {
	a := MustFromSlice([]float32{1, -2, 3}, 3)
	m := a.Map(func(x float32) float32 {
		if x < 0 {
			return 0
		}
		return x
	})
	if m.Data()[1] != 0 || a.Data()[1] != -2 {
		t.Error("Map should not mutate the receiver")
	}
	a.Apply(func(x float32) float32 { return x * 2 })
	if a.Data()[2] != 6 {
		t.Error("Apply should mutate in place")
	}
}

func TestFills(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := MustNew(1000)
	a.FillUniform(rng, -2, 3)
	lo, hi := a.Min(), a.Max()
	if lo < -2 || hi >= 3 {
		t.Errorf("FillUniform out of range: [%v,%v]", lo, hi)
	}
	a.FillNormal(rng, 10, 0.1)
	if m := a.Mean(); math.Abs(m-10) > 0.05 {
		t.Errorf("FillNormal mean = %v, want ~10", m)
	}
	a.FillHe(rng, 50)
	// stddev should be sqrt(2/50) ~ 0.2
	var ss float64
	for _, x := range a.Data() {
		ss += float64(x) * float64(x)
	}
	std := math.Sqrt(ss / float64(a.Len()))
	if math.Abs(std-0.2) > 0.05 {
		t.Errorf("FillHe stddev = %v, want ~0.2", std)
	}
	a.FillXavier(rng, 10, 10)
	limit := math.Sqrt(6.0 / 20.0)
	if float64(a.Max()) > limit || float64(a.Min()) < -limit {
		t.Errorf("FillXavier out of [-%v, %v]", limit, limit)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := MustNew(2, 3, 4)
	orig.FillNormal(rng, 0, 1)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(got) {
		t.Error("round trip changed tensor")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a tensor"))); err == nil {
		t.Error("Read should reject bad magic")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("Read should reject empty input")
	}
}

func TestCopyFrom(t *testing.T) {
	a := MustNew(2, 2)
	b := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	if err := a.CopyFrom(b); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("CopyFrom did not copy")
	}
	if err := a.CopyFrom(MustNew(3)); err == nil {
		t.Error("CopyFrom shape mismatch should fail")
	}
}

// Property: serialisation round-trips arbitrary contents.
func TestQuickSerializeRoundTrip(t *testing.T) {
	f := func(data []float32) bool {
		tn := MustFromSlice(append([]float32(nil), data...), len(data))
		var buf bytes.Buffer
		if _, err := tn.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		// NaN != NaN, so compare bitwise via Equal only when no NaNs.
		for i, x := range tn.Data() {
			gx := got.Data()[i]
			if math.IsNaN(float64(x)) && math.IsNaN(float64(gx)) {
				continue
			}
			if x != gx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: AddInPlace then SubInPlace restores the original values exactly
// when the addend's elements are exactly representable sums (use small ints).
func TestQuickAddSubInverse(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		a := make([]float32, len(raw))
		b := make([]float32, len(raw))
		for i, v := range raw {
			a[i] = float32(v)
			b[i] = float32(int(v) / 2)
		}
		ta := MustFromSlice(append([]float32(nil), a...), len(a))
		tb := MustFromSlice(b, len(b))
		if err := ta.AddInPlace(tb); err != nil {
			return false
		}
		if err := ta.SubInPlace(tb); err != nil {
			return false
		}
		for i := range a {
			if ta.Data()[i] != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Sum is invariant under Clone and Reshape.
func TestQuickSumInvariants(t *testing.T) {
	f := func(raw []int8) bool {
		data := make([]float32, len(raw))
		for i, v := range raw {
			data[i] = float32(v)
		}
		tn := MustFromSlice(data, len(data))
		s := tn.Sum()
		if tn.Clone().Sum() != s {
			return false
		}
		r, err := tn.Reshape(len(data))
		if err != nil {
			return false
		}
		return r.Sum() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	s := MustNew(2, 3).String()
	if s == "" {
		t.Error("String should not be empty")
	}
}
