package tensor

import (
	"math/rand"
	"strings"
	"testing"
)

// TestGemmCrossesNBlock pins the j-blocked kernel against the reference at
// sizes that straddle the gemmBlockN boundary — the regime the batch-wide
// convolution GEMMs live in.
func TestGemmCrossesNBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{
		{3, 5, 1023}, {2, 7, 1024}, {4, 3, 1025}, {65, 129, 2050},
	} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randSlice(rng, m*k), randSlice(rng, k*n)
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		Gemm(got, a, b, m, k, n)
		gemmRef(want, a, b, m, k, n)
		closeSlices(t, "gemm-nblock", got, want, 1e-3)
	}
}

// linearRef is the schoolbook y = x·wᵀ + b reference.
func linearRef(dst, x, w, bias []float32, n, in, out int) {
	for i := 0; i < n; i++ {
		for o := 0; o < out; o++ {
			var acc float64
			if bias != nil {
				acc = float64(bias[o])
			}
			for l := 0; l < in; l++ {
				acc += float64(x[i*in+l]) * float64(w[o*in+l])
			}
			dst[i*out+o] = float32(acc)
		}
	}
}

func TestLinearAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, dims := range [][3]int{
		{1, 1, 1}, {1, 37, 5}, {4, 64, 10}, {9, 130, 65}, {32, 300, 7},
	} {
		n, in, out := dims[0], dims[1], dims[2]
		x, w, bias := randSlice(rng, n*in), randSlice(rng, out*in), randSlice(rng, out)
		got := make([]float32, n*out)
		want := make([]float32, n*out)
		Linear(got, x, w, bias, n, in, out)
		linearRef(want, x, w, bias, n, in, out)
		closeSlices(t, "linear", got, want, 1e-4)

		// nil bias = zero bias.
		Linear(got, x, w, nil, n, in, out)
		for i := range want {
			want[i] = 0
		}
		linearRef(want, x, w, nil, n, in, out)
		closeSlices(t, "linear-nobias", got, want, 1e-4)
	}
}

// TestLinearMatchesPerSample pins the "per-sample Forward is the N=1 case"
// contract bit-for-bit: running Linear row by row must equal the batch call.
func TestLinearMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, in, out := 6, 50, 11
	x, w, bias := randSlice(rng, n*in), randSlice(rng, out*in), randSlice(rng, out)
	batch := make([]float32, n*out)
	Linear(batch, x, w, bias, n, in, out)
	for i := 0; i < n; i++ {
		row := make([]float32, out)
		Linear(row, x[i*in:(i+1)*in], w, bias, 1, in, out)
		for o, v := range row {
			if batch[i*out+o] != v {
				t.Fatalf("row %d col %d: batch %v != per-sample %v", i, o, batch[i*out+o], v)
			}
		}
	}
}

// TestIm2colBatchMatchesPerSample checks that the batch lowering lays each
// sample's im2col matrix into the batch matrix's column slots verbatim.
func TestIm2colBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, tc := range []struct{ n, c, h, w, k, stride, pad int }{
		{1, 1, 5, 5, 3, 1, 0},
		{2, 3, 8, 8, 3, 1, 1},
		{5, 2, 9, 7, 3, 2, 1},
		{3, 3, 11, 11, 5, 2, 0},
		{4, 1, 6, 6, 2, 2, 0},
	} {
		outH := ConvOut(tc.h, tc.k, tc.stride, tc.pad)
		outW := ConvOut(tc.w, tc.k, tc.stride, tc.pad)
		hw := outH * outW
		ckk := tc.c * tc.k * tc.k
		src := randSlice(rng, tc.n*tc.c*tc.h*tc.w)
		batch := make([]float32, ckk*tc.n*hw)
		if err := Im2colBatch(batch, src, tc.n, tc.c, tc.h, tc.w, tc.k, tc.stride, tc.pad); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < tc.n; s++ {
			one := make([]float32, ckk*hw)
			err := Im2col(one, src[s*tc.c*tc.h*tc.w:(s+1)*tc.c*tc.h*tc.w],
				tc.c, tc.h, tc.w, tc.k, tc.stride, tc.pad)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < ckk; r++ {
				for p := 0; p < hw; p++ {
					got := batch[r*tc.n*hw+s*hw+p]
					want := one[r*hw+p]
					if got != want {
						t.Fatalf("%+v sample %d row %d pos %d: batch %v != per-sample %v",
							tc, s, r, p, got, want)
					}
				}
			}
		}
	}
}

func TestIm2colBatchErrorsNameDims(t *testing.T) {
	dst := make([]float32, 1)
	err := Im2colBatch(dst, make([]float32, 2*3*8*8), 2, 3, 8, 8, 3, 1, 1)
	if err == nil {
		t.Fatal("undersized dst accepted")
	}
	for _, want := range []string{"batch 2", "(3,8,8)", "kernel 3", "stride 1", "pad 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}
	if err := Im2colBatch(dst, dst, 0, 1, 3, 3, 3, 1, 0); err == nil {
		t.Fatal("batch 0 accepted")
	}
}

func TestStackAndSample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ts := make([]*Tensor, 3)
	for i := range ts {
		x := MustNew(2, 4, 5)
		x.FillUniform(rng, -1, 1)
		ts[i] = x
	}
	b, err := Stack(ts)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Shape(); got[0] != 3 || got[1] != 2 || got[2] != 4 || got[3] != 5 {
		t.Fatalf("stack shape %v", got)
	}
	for i, x := range ts {
		v, err := b.Sample(i)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Equal(x) {
			t.Fatalf("sample %d does not round-trip", i)
		}
	}
	// Stack copies: mutating the batch must not touch the inputs.
	before := ts[0].At3(0, 0, 0)
	b.Set4(before+1, 0, 0, 0, 0)
	if ts[0].At3(0, 0, 0) != before {
		t.Fatal("stack aliases its inputs")
	}

	if _, err := Stack(nil); err == nil {
		t.Fatal("empty stack accepted")
	}
	if _, err := Stack([]*Tensor{ts[0], MustNew(2, 4, 6)}); err == nil ||
		!strings.Contains(err.Error(), "[2 4 6]") {
		t.Fatalf("mismatched stack error %v does not name the offending shape", err)
	}
	if _, err := b.Sample(3); err == nil {
		t.Fatal("out-of-range sample accepted")
	}
	if _, err := ts[0].Sample(5); err == nil {
		t.Fatal("sample beyond leading dim accepted")
	}
}
