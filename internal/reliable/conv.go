package reliable

import (
	"fmt"

	"repro/internal/tensor"
)

// ConvSpec describes a 2-D convolution between a CHW input and an FCHW
// filter bank. It is shared by the reliable kernel (Algorithm 3) and the
// native baseline so Table 1 compares identical workloads.
type ConvSpec struct {
	Stride int
	Pad    int
}

// Validate checks the spec against an input/filter pair and returns the
// output spatial dimensions.
func (s ConvSpec) Validate(input, filters *tensor.Tensor) (outH, outW int, err error) {
	if s.Stride < 1 {
		return 0, 0, fmt.Errorf("reliable: stride %d must be >= 1", s.Stride)
	}
	if s.Pad < 0 {
		return 0, 0, fmt.Errorf("reliable: pad %d must be >= 0", s.Pad)
	}
	if input.Rank() != 3 {
		return 0, 0, fmt.Errorf("reliable: input must be CHW, got rank %d", input.Rank())
	}
	if filters.Rank() != 4 {
		return 0, 0, fmt.Errorf("reliable: filters must be FCHW, got rank %d", filters.Rank())
	}
	if input.Dim(0) != filters.Dim(1) {
		return 0, 0, fmt.Errorf("reliable: input channels %d != filter channels %d",
			input.Dim(0), filters.Dim(1))
	}
	h, w := input.Dim(1), input.Dim(2)
	kh, kw := filters.Dim(2), filters.Dim(3)
	if h+2*s.Pad < kh || w+2*s.Pad < kw {
		return 0, 0, fmt.Errorf("reliable: kernel %dx%d does not fit input %dx%d (pad %d)",
			kh, kw, h, w, s.Pad)
	}
	outH = (h+2*s.Pad-kh)/s.Stride + 1
	outW = (w+2*s.Pad-kw)/s.Stride + 1
	if outH < 1 || outW < 1 {
		return 0, 0, fmt.Errorf("reliable: kernel %dx%d does not fit input %dx%d (pad %d)",
			kh, kw, h, w, s.Pad)
	}
	return outH, outW, nil
}

// Conv2D executes the full convolution layer with the reliable kernel of
// Algorithm 3: every multiply and every accumulate goes through the engine's
// retry/bucket protocol. bias may be nil (no bias) or have one entry per
// filter.
//
// On a persistent-error abort the partially computed output is discarded and
// ErrBucketTripped is returned (wrapped, with the failing output coordinate).
func Conv2D(e *Engine, input, filters *tensor.Tensor, bias []float32, spec ConvSpec) (*tensor.Tensor, error) {
	outH, outW, err := spec.Validate(input, filters)
	if err != nil {
		return nil, err
	}
	nf := filters.Dim(0)
	if bias != nil && len(bias) != nf {
		return nil, fmt.Errorf("reliable: bias length %d != filters %d", len(bias), nf)
	}
	inC, inH, inW := input.Dim(0), input.Dim(1), input.Dim(2)
	kh, kw := filters.Dim(2), filters.Dim(3)
	out, err := tensor.New(nf, outH, outW)
	if err != nil {
		return nil, err
	}

	in := input.Data()
	fl := filters.Data()
	od := out.Data()
	for f := 0; f < nf; f++ {
		fBase := f * inC * kh * kw
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				var acc float32
				if bias != nil {
					acc = bias[f]
				}
				iy0 := oy*spec.Stride - spec.Pad
				ix0 := ox*spec.Stride - spec.Pad
				for c := 0; c < inC; c++ {
					cBase := c * inH * inW
					kBase := fBase + c*kh*kw
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						rowBase := cBase + iy*inW
						kRow := kBase + ky*kw
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= inW {
								continue
							}
							acc, err = e.MAC(acc, in[rowBase+ix], fl[kRow+kx])
							if err != nil {
								return nil, fmt.Errorf("reliable: conv output (%d,%d,%d): %w",
									f, oy, ox, err)
							}
						}
					}
				}
				od[(f*outH+oy)*outW+ox] = acc
			}
		}
	}
	return out, nil
}

// NativeConv2D is the unprotected reference implementation: plain float32
// loops with no overloading, no qualifiers and no error accounting. It is
// the "native execution" row of Table 1 and the oracle fault campaigns
// compare against.
func NativeConv2D(input, filters *tensor.Tensor, bias []float32, spec ConvSpec) (*tensor.Tensor, error) {
	outH, outW, err := spec.Validate(input, filters)
	if err != nil {
		return nil, err
	}
	nf := filters.Dim(0)
	if bias != nil && len(bias) != nf {
		return nil, fmt.Errorf("reliable: bias length %d != filters %d", len(bias), nf)
	}
	inC, inH, inW := input.Dim(0), input.Dim(1), input.Dim(2)
	kh, kw := filters.Dim(2), filters.Dim(3)
	out, err := tensor.New(nf, outH, outW)
	if err != nil {
		return nil, err
	}

	in := input.Data()
	fl := filters.Data()
	od := out.Data()
	for f := 0; f < nf; f++ {
		fBase := f * inC * kh * kw
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				var acc float32
				if bias != nil {
					acc = bias[f]
				}
				iy0 := oy*spec.Stride - spec.Pad
				ix0 := ox*spec.Stride - spec.Pad
				for c := 0; c < inC; c++ {
					cBase := c * inH * inW
					kBase := fBase + c*kh*kw
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						rowBase := cBase + iy*inW
						kRow := kBase + ky*kw
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < inW {
								acc += in[rowBase+ix] * fl[kRow+kx]
							}
						}
					}
				}
				od[(f*outH+oy)*outW+ox] = acc
			}
		}
	}
	return out, nil
}

// MACCount returns the number of multiply–accumulate pairs a convolution
// performs (ignoring padding clipping, i.e. an upper bound that is exact for
// pad 0), used by the guarantee calculator and the benchmark reports.
func MACCount(input, filters *tensor.Tensor, spec ConvSpec) (uint64, error) {
	outH, outW, err := spec.Validate(input, filters)
	if err != nil {
		return 0, err
	}
	per := uint64(filters.Dim(1)) * uint64(filters.Dim(2)) * uint64(filters.Dim(3))
	return uint64(filters.Dim(0)) * uint64(outH) * uint64(outW) * per, nil
}
