package reliable

import (
	"fmt"

	"repro/internal/fault"
)

// This file implements the graceful-degradation strategy Section II-B
// attributes to spatial redundancy: "in the case of spatial redundancy and
// given an error, the platform has the potential to operate in a reduced
// mode allowing the implementation of graceful degradation strategies."
//
// DegradingOps executes as spatial TMR across three PEs. While healthy, a
// single faulty PE is out-voted AND identified (it is the dissenter); after
// a PE accumulates enough dissents it is excluded and the operator degrades
// to spatial DMR on the two survivors. A second exclusion degrades to
// simplex (single-PE) operation, at which point the operator keeps running
// but reports DegradeSimplex so the application can treat further results as
// unqualified — availability is preserved, and the mode is always visible.

// DegradeLevel reports the operator's current redundancy level.
type DegradeLevel int

const (
	// DegradeTMR: all three PEs healthy, full voting.
	DegradeTMR DegradeLevel = iota + 1
	// DegradeDMR: one PE excluded, compare-only on the two survivors.
	DegradeDMR
	// DegradeSimplex: two PEs excluded, unprotected single-PE execution.
	DegradeSimplex
)

// String implements fmt.Stringer.
func (d DegradeLevel) String() string {
	switch d {
	case DegradeTMR:
		return "tmr"
	case DegradeDMR:
		return "dmr"
	case DegradeSimplex:
		return "simplex"
	default:
		return fmt.Sprintf("degrade(%d)", int(d))
	}
}

// DegradingOps is the self-diagnosing, gracefully degrading operator set.
// Not safe for concurrent use.
type DegradingOps struct {
	pes       [3]fault.ALU
	healthy   [3]bool
	dissents  [3]uint32
	threshold uint32
	excluded  int
}

var _ Ops = (*DegradingOps)(nil)

// NewDegradingOps builds the operator over three PEs. threshold is the
// dissent count at which a PE is excluded (≥ 1).
func NewDegradingOps(a, b, c fault.ALU, threshold uint32) (*DegradingOps, error) {
	if a == nil || b == nil || c == nil {
		return nil, fmt.Errorf("reliable: degrading ops need three ALUs")
	}
	if threshold < 1 {
		return nil, fmt.Errorf("reliable: dissent threshold %d must be >= 1", threshold)
	}
	return &DegradingOps{
		pes:       [3]fault.ALU{a, b, c},
		healthy:   [3]bool{true, true, true},
		threshold: threshold,
	}, nil
}

// Level returns the current degradation level.
func (d *DegradingOps) Level() DegradeLevel {
	switch d.excluded {
	case 0:
		return DegradeTMR
	case 1:
		return DegradeDMR
	default:
		return DegradeSimplex
	}
}

// Healthy reports whether PE i is still included.
func (d *DegradingOps) Healthy(i int) bool {
	if i < 0 || i > 2 {
		return false
	}
	return d.healthy[i]
}

// Dissents returns PE i's accumulated dissent count.
func (d *DegradingOps) Dissents(i int) uint32 {
	if i < 0 || i > 2 {
		return 0
	}
	return d.dissents[i]
}

func (d *DegradingOps) exclude(i int) {
	if d.healthy[i] {
		d.healthy[i] = false
		d.excluded++
	}
}

// execute runs op on every healthy PE and applies voting/diagnosis.
func (d *DegradingOps) execute(op func(fault.ALU) float32) (float32, bool) {
	var vals [3]float32
	var idx [3]int
	n := 0
	for i, alu := range d.pes {
		if d.healthy[i] {
			vals[n] = op(alu)
			idx[n] = i
			n++
		}
	}
	switch n {
	case 3:
		// Vote and diagnose the dissenter.
		switch {
		case vals[0] == vals[1] && vals[1] == vals[2]:
			return vals[0], true
		case vals[0] == vals[1]:
			d.noteDissent(idx[2])
			return vals[0], true
		case vals[0] == vals[2]:
			d.noteDissent(idx[1])
			return vals[0], true
		case vals[1] == vals[2]:
			d.noteDissent(idx[0])
			return vals[1], true
		default:
			// Three-way disagreement: no diagnosis possible.
			return vals[0], false
		}
	case 2:
		if vals[0] == vals[1] {
			return vals[0], true
		}
		// A mismatch in DMR mode cannot identify the culprit; both PEs
		// accrue suspicion so a persistent offender is eventually excluded.
		d.noteDissent(idx[0])
		d.noteDissent(idx[1])
		return vals[0], false
	default:
		// Simplex: unprotected, qualifier asserts true (like Algorithm 1);
		// the application must consult Level() to see the reduced mode.
		return vals[0], true
	}
}

func (d *DegradingOps) noteDissent(i int) {
	d.dissents[i]++
	if d.dissents[i] >= d.threshold {
		d.exclude(i)
	}
}

// Mul implements Ops.
func (d *DegradingOps) Mul(a, b float32) (float32, bool) {
	return d.execute(func(alu fault.ALU) float32 { return alu.Mul(a, b) })
}

// Add implements Ops.
func (d *DegradingOps) Add(a, b float32) (float32, bool) {
	return d.execute(func(alu fault.ALU) float32 { return alu.Add(a, b) })
}

// Name implements Ops.
func (d *DegradingOps) Name() string {
	return "degrading-" + d.Level().String()
}
