package reliable

import (
	"errors"
	"fmt"
)

// ErrBucketTripped is returned when the leaky-bucket error counter reaches
// its ceiling: errors are persistent and the execution is declared failed.
// Per the paper, "only persistent failures are explicitly reported".
var ErrBucketTripped = errors.New("reliable: error counter reached ceiling, execution failed")

// Stats counts the work performed by an Engine. Attempt counts include
// re-executions, so Ops − (OKs of the bucket) is the wasted work.
type Stats struct {
	// Ops is the number of operation attempts (each retry counts again).
	Ops uint64
	// Failed is the number of attempts whose qualifier was false.
	Failed uint64
	// Retries is the number of rollback/re-execution events (always
	// ≤ Failed; the final failed attempt before a bucket trip does not
	// retry).
	Retries uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Ops += other.Ops
	s.Failed += other.Failed
	s.Retries += other.Retries
}

// Sub removes other from s — the delta step for per-inference counters
// read off a long-lived (per-worker) engine.
func (s *Stats) Sub(other Stats) {
	s.Ops -= other.Ops
	s.Failed -= other.Failed
	s.Retries -= other.Retries
}

// Engine executes overloaded operations under the Algorithm 3 protocol:
// every operation is assumed to have failed unless its qualifier asserts
// otherwise; a failed operation raises the leaky bucket by its factor and —
// if the bucket has not tripped — is retried (the rollback distance is one
// operation); a correct operation drains the bucket by one.
//
// Engine is not safe for concurrent use. The system-wide idiom is
// per-worker engines: the execution layer (internal/infer) builds one
// engine per pool worker via its EngineFactory and aggregates their Stats,
// and internal/core resets the leaky bucket between inferences so each
// classification keeps the per-execution error-counter semantics.
type Engine struct {
	ops    Ops
	bucket *LeakyBucket
	stats  Stats
}

// NewEngine returns an engine executing via ops and accounting errors in
// bucket. A nil bucket gets the paper's default (factor 2, ceiling 3).
func NewEngine(ops Ops, bucket *LeakyBucket) (*Engine, error) {
	if ops == nil {
		return nil, fmt.Errorf("reliable: engine needs ops")
	}
	if bucket == nil {
		bucket = NewDefaultBucket()
	}
	return &Engine{ops: ops, bucket: bucket}, nil
}

// Mul executes a reliable multiplication (retry + bucket protocol). The
// retry loop is written out inline (rather than through a closure) because
// this is the innermost statement of every convolution the DCNN executes.
func (e *Engine) Mul(a, b float32) (float32, error) {
	for {
		v, ok := e.ops.Mul(a, b)
		e.stats.Ops++
		if ok {
			e.bucket.OK()
			return v, nil
		}
		e.stats.Failed++
		if e.bucket.Fail() {
			return 0, fmt.Errorf("after %d attempts (%d failed): %w",
				e.stats.Ops, e.stats.Failed, ErrBucketTripped)
		}
		e.stats.Retries++
	}
}

// Add executes a reliable addition (retry + bucket protocol).
func (e *Engine) Add(a, b float32) (float32, error) {
	for {
		v, ok := e.ops.Add(a, b)
		e.stats.Ops++
		if ok {
			e.bucket.OK()
			return v, nil
		}
		e.stats.Failed++
		if e.bucket.Fail() {
			return 0, fmt.Errorf("after %d attempts (%d failed): %w",
				e.stats.Ops, e.stats.Failed, ErrBucketTripped)
		}
		e.stats.Retries++
	}
}

// MAC executes acc + a*b as two reliable operations, the inner step of the
// convolution kernel of Algorithm 3.
func (e *Engine) MAC(acc, a, b float32) (float32, error) {
	p, err := e.Mul(a, b)
	if err != nil {
		return 0, err
	}
	return e.Add(acc, p)
}

// Stats returns the accumulated work counters.
func (e *Engine) Stats() Stats { return e.stats }

// Bucket returns the engine's error counter (shared, live view).
func (e *Engine) Bucket() *LeakyBucket { return e.bucket }

// Ops returns the operator variant the engine executes with.
func (e *Engine) Ops() Ops { return e.ops }

// ResetStats clears the work counters (the bucket is left untouched; use
// Bucket().Reset() to drain it).
func (e *Engine) ResetStats() { e.stats = Stats{} }
