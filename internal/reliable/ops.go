// Package reliable implements the paper's reliable-execution machinery:
//
//   - the overloaded arithmetic operators of Algorithms 1 and 2 — every
//     multiply/accumulate returns a value AND a qualifier saying whether the
//     operation is asserted to have executed correctly;
//   - temporal and spatial dual-modular redundancy (DMR) and triple-modular
//     redundancy (TMR) variants of those operators;
//   - the leaky-bucket error counter of Algorithm 3;
//   - the reliable convolution kernel of Algorithm 3, with an
//     operation-granularity rollback distance of exactly one operation; and
//   - layer- and network-granularity checkpoint/rollback executors used by
//     the rollback-distance ablation.
//
// Arithmetic is delegated to fault.ALU implementations so the same code path
// runs fault-free (benchmarks, Table 1) and under injection (campaigns).
package reliable

import (
	"fmt"

	"repro/internal/fault"
)

// Ops is the overloaded-operator interface of Section IV: "the basic
// operators return a value ... [and] a qualifier indicating whether the
// operation was carried out correctly or not."
type Ops interface {
	// Mul returns a*b and a qualifier.
	Mul(a, b float32) (float32, bool)
	// Add returns a+b and a qualifier.
	Add(a, b float32) (float32, bool)
	// Name identifies the operator variant in reports and benchmarks.
	Name() string
}

// Plain is Algorithm 1: a single, non-redundant execution whose qualifier is
// the predefined constant true. It establishes baseline performance and — by
// construction — detects nothing.
type Plain struct {
	alu fault.ALU
}

var _ Ops = (*Plain)(nil)

// NewPlain returns Algorithm 1 operators executing on alu.
func NewPlain(alu fault.ALU) (*Plain, error) {
	if alu == nil {
		return nil, fmt.Errorf("reliable: plain ops need an ALU")
	}
	return &Plain{alu: alu}, nil
}

// Mul implements Ops (Algorithm 1).
func (p *Plain) Mul(a, b float32) (float32, bool) { return p.alu.Mul(a, b), true }

// Add implements Ops (Algorithm 1).
func (p *Plain) Add(a, b float32) (float32, bool) { return p.alu.Add(a, b), true }

// Name implements Ops.
func (p *Plain) Name() string { return "plain" }

// TemporalDMR is Algorithm 2: the same operation is executed twice in series
// on the SAME ALU and the qualifier is set to true iff the two results agree.
// Under the SEU assumption (independent transient faults) this detects any
// single fault; a permanent ALU defect produces two identical wrong results
// and escapes detection — the limitation Section II-B attributes to temporal
// redundancy.
type TemporalDMR struct {
	alu fault.ALU
}

var _ Ops = (*TemporalDMR)(nil)

// NewTemporalDMR returns Algorithm 2 operators executing twice on alu.
func NewTemporalDMR(alu fault.ALU) (*TemporalDMR, error) {
	if alu == nil {
		return nil, fmt.Errorf("reliable: temporal DMR ops need an ALU")
	}
	return &TemporalDMR{alu: alu}, nil
}

// Mul implements Ops (Algorithm 2).
func (t *TemporalDMR) Mul(a, b float32) (float32, bool) {
	p1 := t.alu.Mul(a, b)
	p2 := t.alu.Mul(a, b)
	return p1, p1 == p2
}

// Add implements Ops (Algorithm 2).
func (t *TemporalDMR) Add(a, b float32) (float32, bool) {
	s1 := t.alu.Add(a, b)
	s2 := t.alu.Add(a, b)
	return s1, s1 == s2
}

// Name implements Ops.
func (t *TemporalDMR) Name() string { return "temporal-dmr" }

// SpatialDMR executes each operation on two DIFFERENT ALUs (two processing
// elements of the compute unit) and compares. Unlike temporal DMR it also
// detects permanent single-PE defects, at the cost of occupying two PEs;
// execution can proceed in parallel on real hardware (Section II-B), so its
// latency advantage is not modelled here — only its detection behaviour.
type SpatialDMR struct {
	a, b fault.ALU
}

var _ Ops = (*SpatialDMR)(nil)

// NewSpatialDMR returns operators executing on the PE pair (a, b).
func NewSpatialDMR(a, b fault.ALU) (*SpatialDMR, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("reliable: spatial DMR ops need two ALUs")
	}
	return &SpatialDMR{a: a, b: b}, nil
}

// Mul implements Ops.
func (s *SpatialDMR) Mul(a, b float32) (float32, bool) {
	p1 := s.a.Mul(a, b)
	p2 := s.b.Mul(a, b)
	return p1, p1 == p2
}

// Add implements Ops.
func (s *SpatialDMR) Add(a, b float32) (float32, bool) {
	s1 := s.a.Add(a, b)
	s2 := s.b.Add(a, b)
	return s1, s1 == s2
}

// Name implements Ops.
func (s *SpatialDMR) Name() string { return "spatial-dmr" }

// TMR executes each operation on three ALUs and majority-votes: "in the case
// of triple modular redundancy, agreed upon by execution of the algorithm
// three times and voting on the result" (Section IV). A single faulty PE is
// masked (qualifier true, correct value); only a two-out-of-three corruption
// leaves the vote inconclusive, in which case the qualifier is false.
type TMR struct {
	a, b, c fault.ALU
}

var _ Ops = (*TMR)(nil)

// NewTMR returns voting operators over the PE triple (a, b, c). Passing the
// same ALU three times yields temporal TMR.
func NewTMR(a, b, c fault.ALU) (*TMR, error) {
	if a == nil || b == nil || c == nil {
		return nil, fmt.Errorf("reliable: TMR ops need three ALUs")
	}
	return &TMR{a: a, b: b, c: c}, nil
}

func vote(x, y, z float32) (float32, bool) {
	switch {
	case x == y || x == z:
		return x, true
	case y == z:
		return y, true
	default:
		// Three-way disagreement: no majority. Return the first result with
		// a false qualifier so Algorithm 3's retry path takes over.
		return x, false
	}
}

// Mul implements Ops.
func (t *TMR) Mul(a, b float32) (float32, bool) {
	return vote(t.a.Mul(a, b), t.b.Mul(a, b), t.c.Mul(a, b))
}

// Add implements Ops.
func (t *TMR) Add(a, b float32) (float32, bool) {
	return vote(t.a.Add(a, b), t.b.Add(a, b), t.c.Add(a, b))
}

// Name implements Ops.
func (t *TMR) Name() string { return "tmr" }
