package reliable

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// This file implements the coarse-granularity checkpoint/rollback executors
// used by the rollback-distance ablation (Section II-E: "Once there are hard
// or soft deadlines to be met, the rollback-distance becomes a significant
// consideration"). The paper's contribution reduces the rollback distance to
// ONE OPERATION (Engine + Conv2D); the executors here provide the classical
// comparison points:
//
//   - unit-level checkpointing: execute a unit of work twice, compare the
//     outputs at the checkpoint, and re-execute the WHOLE unit on mismatch
//     ("unit" = one layer, or the whole network);
//   - no checkpointing at all (single unprotected execution).

// ErrRollbackExhausted is returned when a checkpointed unit keeps
// mismatching for the configured number of attempts — the repetitive-error
// case in which, as Section II-B notes, "there are few mechanisms available
// to halt rollback and re-execution" other than giving up.
var ErrRollbackExhausted = errors.New("reliable: rollback attempts exhausted")

// UnitResult reports the outcome of a checkpointed unit execution.
type UnitResult struct {
	// Output is the agreed result (nil if the executor gave up).
	Output *tensor.Tensor
	// Attempts is the number of duplicated executions performed (1 attempt
	// = 2 executions of the unit).
	Attempts int
	// Rollbacks is Attempts − 1.
	Rollbacks int
	// OpsExecuted estimates the scalar operations spent, including all
	// re-execution: attempts × 2 × opsPerUnit.
	OpsExecuted uint64
}

// Unit is a deterministic unit of work (e.g. one convolution layer executed
// on a possibly faulty ALU). Each call must recompute from the same inputs;
// nondeterminism must come only from injected faults.
type Unit func() (*tensor.Tensor, error)

// CheckpointedRun executes unit twice per attempt and compares the two
// outputs element-wise (the checkpoint). On mismatch it rolls back and
// re-executes the whole unit, up to maxAttempts. opsPerUnit is the caller's
// estimate of scalar work per single execution, used for the work accounting
// the ablation reports.
func CheckpointedRun(unit Unit, maxAttempts int, opsPerUnit uint64) (UnitResult, error) {
	var res UnitResult
	if unit == nil {
		return res, fmt.Errorf("reliable: checkpointed run needs a unit")
	}
	if maxAttempts < 1 {
		return res, fmt.Errorf("reliable: maxAttempts %d must be >= 1", maxAttempts)
	}
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		res.Attempts = attempt
		res.Rollbacks = attempt - 1
		res.OpsExecuted += 2 * opsPerUnit

		a, err := unit()
		if err != nil {
			return res, fmt.Errorf("reliable: unit execution 1 of attempt %d: %w", attempt, err)
		}
		b, err := unit()
		if err != nil {
			return res, fmt.Errorf("reliable: unit execution 2 of attempt %d: %w", attempt, err)
		}
		if a.Equal(b) {
			res.Output = a
			return res, nil
		}
	}
	return res, fmt.Errorf("reliable: after %d attempts: %w", res.Attempts, ErrRollbackExhausted)
}

// UnprotectedRun executes the unit once with no checkpoint — the baseline
// that converts every fault into potential silent data corruption.
func UnprotectedRun(unit Unit, opsPerUnit uint64) (UnitResult, error) {
	var res UnitResult
	if unit == nil {
		return res, fmt.Errorf("reliable: unprotected run needs a unit")
	}
	out, err := unit()
	if err != nil {
		return res, fmt.Errorf("reliable: unprotected unit: %w", err)
	}
	res.Output = out
	res.Attempts = 1
	res.OpsExecuted = opsPerUnit
	return res, nil
}
