package reliable

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/tensor"
)

func TestPlainOpsAlwaysQualify(t *testing.T) {
	ops, err := NewPlain(fault.Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := ops.Mul(3, 4)
	if v != 12 || !ok {
		t.Errorf("Mul = %v,%v", v, ok)
	}
	v, ok = ops.Add(3, 4)
	if v != 7 || !ok {
		t.Errorf("Add = %v,%v", v, ok)
	}
	if ops.Name() == "" {
		t.Error("empty name")
	}
	// Algorithm 1's qualifier is constant true even when the ALU lies.
	bad, _ := fault.NewPermanent(fault.StuckAt{Bit: 22, Value: true})
	ops, _ = NewPlain(bad)
	if _, ok := ops.Mul(1, 1); !ok {
		t.Error("plain ops must assert true even on faulty hardware — that is their defect")
	}
	if _, err := NewPlain(nil); err == nil {
		t.Error("nil ALU should fail")
	}
}

func TestTemporalDMRDetectsTransient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Fire exactly one corruption at the first operation: the two
	// executions disagree and the qualifier must be false.
	alu, err := fault.NewOnceAfter(0, fault.BitFlip{Bit: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := NewTemporalDMR(alu)
	if err != nil {
		t.Fatal(err)
	}
	_, ok := ops.Mul(3, 4)
	if ok {
		t.Error("temporal DMR must detect a single transient fault")
	}
	// Subsequent operations are clean again.
	v, ok := ops.Mul(3, 4)
	if v != 12 || !ok {
		t.Errorf("post-fault Mul = %v,%v", v, ok)
	}
	v, ok = ops.Add(1, 2)
	if v != 3 || !ok {
		t.Errorf("Add = %v,%v", v, ok)
	}
	if _, err := NewTemporalDMR(nil); err == nil {
		t.Error("nil ALU should fail")
	}
}

func TestTemporalDMRMissesPermanent(t *testing.T) {
	alu, _ := fault.NewPermanent(fault.StuckAt{Bit: 22, Value: true})
	ops, _ := NewTemporalDMR(alu)
	v, ok := ops.Mul(1, 1)
	if !ok {
		t.Fatal("temporal DMR must NOT detect a deterministic permanent fault (Section II-B)")
	}
	var ideal fault.Ideal
	if v == ideal.Mul(1, 1) {
		t.Skip("stuck bit happened to not alter this product")
	}
}

func TestSpatialDMRDetectsPermanent(t *testing.T) {
	bad, _ := fault.NewPermanent(fault.StuckAt{Bit: 22, Value: true})
	ops, err := NewSpatialDMR(fault.Ideal{}, bad)
	if err != nil {
		t.Fatal(err)
	}
	detected := false
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a, b := rng.Float32(), rng.Float32()
		if _, ok := ops.Mul(a, b); !ok {
			detected = true
			break
		}
	}
	if !detected {
		t.Error("spatial DMR should detect a permanent fault in one PE")
	}
	if _, err := NewSpatialDMR(nil, fault.Ideal{}); err == nil {
		t.Error("nil ALU should fail")
	}
	// Two clean PEs agree.
	ops, _ = NewSpatialDMR(fault.Ideal{}, fault.Ideal{})
	if v, ok := ops.Add(2, 3); v != 5 || !ok {
		t.Errorf("clean spatial DMR Add = %v,%v", v, ok)
	}
}

func TestTMRMasksSingleFaultyPE(t *testing.T) {
	bad, _ := fault.NewPermanent(fault.StuckAt{Bit: 22, Value: true})
	ops, err := NewTMR(fault.Ideal{}, bad, fault.Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var ideal fault.Ideal
	for i := 0; i < 100; i++ {
		a, b := rng.Float32(), rng.Float32()
		v, ok := ops.Mul(a, b)
		if !ok {
			t.Fatal("TMR with one faulty PE must still reach a majority")
		}
		if v != ideal.Mul(a, b) {
			t.Fatal("TMR majority must be the correct value")
		}
	}
	if ops.Name() == "" {
		t.Error("empty name")
	}
	if _, err := NewTMR(nil, nil, nil); err == nil {
		t.Error("nil ALUs should fail")
	}
}

func TestTMRThreeWayDisagreement(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Three always-corrupting transient ALUs: results almost surely
	// pairwise distinct → no majority → qualifier false.
	mk := func(seed int64) fault.ALU {
		a, err := fault.NewTransient(1, fault.WordRandom{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	ops, _ := NewTMR(mk(10), mk(20), mk(30))
	sawDisagreement := false
	for i := 0; i < 50; i++ {
		a, b := rng.Float32(), rng.Float32()
		if _, ok := ops.Mul(a, b); !ok {
			sawDisagreement = true
			break
		}
	}
	if !sawDisagreement {
		t.Error("three independently random results should disagree at least once in 50 trials")
	}
}

func TestBucketPaperSemantics(t *testing.T) {
	// Default factor 2, ceiling 3: "a stream of correctly executed
	// operations will cancel one, but not two successive errors."
	b := NewDefaultBucket()

	// One error followed by a stream of correct operations: no trip.
	if b.Fail() {
		t.Fatal("single error must not trip the default bucket")
	}
	for i := 0; i < 10; i++ {
		b.OK()
	}
	if b.Tripped() || b.Level() != 0 {
		t.Fatal("stream of correct ops should drain the bucket")
	}

	// Two successive errors: trip.
	if b.Fail() {
		t.Fatal("first of two errors must not trip")
	}
	if !b.Fail() {
		t.Fatal("second successive error must trip (2+2 >= 3)")
	}
	if !b.Tripped() {
		t.Fatal("trip latch should hold")
	}
	b.Reset()
	if b.Tripped() || b.Level() != 0 || b.Errors() != 0 || b.OKs() != 0 || b.Peak() != 0 {
		t.Fatal("reset should clear everything")
	}
}

func TestBucketErrorSpacing(t *testing.T) {
	// With defaults, two errors separated by a single correct op still trip
	// (2 − 1 + 2 = 3 ≥ 3); separated by two correct ops they do not.
	b := NewDefaultBucket()
	b.Fail()
	b.OK()
	if !b.Fail() {
		t.Error("errors separated by one OK should still trip the default bucket")
	}

	b = NewDefaultBucket()
	b.Fail()
	b.OK()
	b.OK()
	if b.Fail() {
		t.Error("errors separated by two OKs should be absorbed")
	}
}

func TestBucketAccounting(t *testing.T) {
	b, err := NewLeakyBucket(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b.Fail()
	}
	b.OK()
	if b.Level() != 4 || b.Peak() != 5 || b.Errors() != 5 || b.OKs() != 1 {
		t.Errorf("bucket accounting wrong: %s", b.String())
	}
	snap := b.Snapshot()
	if snap.Level != 4 || snap.Peak != 5 || snap.Errors != 5 || snap.OKs != 1 || snap.Tripped {
		t.Errorf("snapshot wrong: %+v", snap)
	}
}

func TestBucketValidationAndFailFast(t *testing.T) {
	if _, err := NewLeakyBucket(0, 3); err == nil {
		t.Error("factor 0 should fail")
	}
	if _, err := NewLeakyBucket(2, 0); err == nil {
		t.Error("ceiling 0 should fail")
	}
	ff := NewFailFastBucket()
	if !ff.Fail() {
		t.Error("fail-fast bucket must trip on the first error")
	}
	// Zero-value bucket falls back to defaults rather than dividing by zero.
	var zero LeakyBucket
	if zero.Fail() {
		t.Error("zero-value bucket should use default factor/ceiling and not trip on first error")
	}
}

func TestEngineRetriesTransientFault(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// One corruption at the very first operation; temporal DMR detects it,
	// the engine rolls back one operation and succeeds on the retry.
	alu, _ := fault.NewOnceAfter(0, fault.BitFlip{Bit: 30}, rng)
	ops, _ := NewTemporalDMR(alu)
	e, err := NewEngine(ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Mul(3, 4)
	if err != nil {
		t.Fatalf("Mul after transient fault: %v", err)
	}
	if v != 12 {
		t.Errorf("Mul = %v, want 12", v)
	}
	st := e.Stats()
	if st.Ops != 2 || st.Failed != 1 || st.Retries != 1 {
		t.Errorf("stats = %+v, want 2 ops, 1 failed, 1 retry", st)
	}
	if e.Bucket().Tripped() {
		t.Error("bucket must not trip on a single corrected error")
	}
}

func TestEngineTripsOnPersistentFault(t *testing.T) {
	// Rate-1 transient corruption: every DMR pair disagrees, retries keep
	// failing, the default bucket trips on the second successive failure.
	rng := rand.New(rand.NewSource(6))
	alu, _ := fault.NewTransient(1, fault.WordRandom{}, rng)
	ops, _ := NewTemporalDMR(alu)
	e, _ := NewEngine(ops, nil)
	_, err := e.Mul(3, 4)
	if !errors.Is(err, ErrBucketTripped) {
		t.Fatalf("want ErrBucketTripped, got %v", err)
	}
	st := e.Stats()
	if st.Failed != 2 || st.Retries != 1 {
		t.Errorf("stats = %+v, want 2 failures and 1 retry before trip", st)
	}
}

func TestEngineMACAndReset(t *testing.T) {
	ops, _ := NewPlain(fault.Ideal{})
	e, _ := NewEngine(ops, nil)
	v, err := e.MAC(10, 3, 4)
	if err != nil || v != 22 {
		t.Fatalf("MAC = %v, %v", v, err)
	}
	if e.Stats().Ops != 2 {
		t.Errorf("MAC should be two ops, got %d", e.Stats().Ops)
	}
	e.ResetStats()
	if e.Stats().Ops != 0 {
		t.Error("ResetStats should clear counters")
	}
	if e.Ops().Name() != "plain" {
		t.Error("Ops accessor wrong")
	}
	if _, err := NewEngine(nil, nil); err == nil {
		t.Error("nil ops should fail")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Ops: 1, Failed: 2, Retries: 3}
	a.Add(Stats{Ops: 10, Failed: 20, Retries: 30})
	if a.Ops != 11 || a.Failed != 22 || a.Retries != 33 {
		t.Errorf("Stats.Add = %+v", a)
	}
}

func newTestConv(t *testing.T, seed int64, c, h, w, f, k int) (*tensor.Tensor, *tensor.Tensor, []float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	in := tensor.MustNew(c, h, w)
	in.FillUniform(rng, -1, 1)
	fl := tensor.MustNew(f, c, k, k)
	fl.FillUniform(rng, -1, 1)
	bias := make([]float32, f)
	for i := range bias {
		bias[i] = rng.Float32()
	}
	return in, fl, bias
}

func TestReliableConvMatchesNative(t *testing.T) {
	in, fl, bias := newTestConv(t, 7, 3, 12, 12, 4, 3)
	for _, spec := range []ConvSpec{
		{Stride: 1, Pad: 0},
		{Stride: 2, Pad: 0},
		{Stride: 1, Pad: 1},
		{Stride: 3, Pad: 2},
	} {
		want, err := NativeConv2D(in, fl, bias, spec)
		if err != nil {
			t.Fatal(err)
		}
		ops, _ := NewPlain(fault.Ideal{})
		e, _ := NewEngine(ops, nil)
		got, err := Conv2D(e, in, fl, bias, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !want.SameShape(got) {
			t.Fatalf("spec %+v: shape %v != %v", spec, want.Shape(), got.Shape())
		}
		if !want.AllClose(got, 1e-5) {
			d, _ := want.MaxAbsDiff(got)
			t.Fatalf("spec %+v: reliable conv diverges from native by %v", spec, d)
		}
	}
}

func TestReliableConvNilBias(t *testing.T) {
	in, fl, _ := newTestConv(t, 8, 2, 8, 8, 3, 3)
	ops, _ := NewPlain(fault.Ideal{})
	e, _ := NewEngine(ops, nil)
	got, err := Conv2D(e, in, fl, nil, ConvSpec{Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NativeConv2D(in, fl, nil, ConvSpec{Stride: 1})
	if !want.AllClose(got, 1e-5) {
		t.Error("nil-bias conv mismatch")
	}
}

func TestConvValidation(t *testing.T) {
	in, fl, bias := newTestConv(t, 9, 2, 8, 8, 3, 3)
	ops, _ := NewPlain(fault.Ideal{})
	e, _ := NewEngine(ops, nil)
	if _, err := Conv2D(e, in, fl, bias, ConvSpec{Stride: 0}); err == nil {
		t.Error("stride 0 should fail")
	}
	if _, err := Conv2D(e, in, fl, bias, ConvSpec{Stride: 1, Pad: -1}); err == nil {
		t.Error("negative pad should fail")
	}
	if _, err := Conv2D(e, in, fl, bias[:1], ConvSpec{Stride: 1}); err == nil {
		t.Error("short bias should fail")
	}
	bad := tensor.MustNew(3, 5, 3, 3) // channel mismatch
	if _, err := Conv2D(e, in, bad, nil, ConvSpec{Stride: 1}); err == nil {
		t.Error("channel mismatch should fail")
	}
	tooBig := tensor.MustNew(3, 2, 20, 20) // kernel larger than input
	if _, err := Conv2D(e, in, tooBig, nil, ConvSpec{Stride: 1}); err == nil {
		t.Error("oversized kernel should fail")
	}
	rank2 := tensor.MustNew(8, 8)
	if _, err := Conv2D(e, rank2, fl, nil, ConvSpec{Stride: 1}); err == nil {
		t.Error("rank-2 input should fail")
	}
	if _, err := Conv2D(e, in, rank2, nil, ConvSpec{Stride: 1}); err == nil {
		t.Error("rank-2 filters should fail")
	}
}

func TestReliableConvCorrectsSingleFault(t *testing.T) {
	in, fl, bias := newTestConv(t, 10, 2, 10, 10, 3, 3)
	spec := ConvSpec{Stride: 1, Pad: 1}
	want, err := NativeConv2D(in, fl, bias, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Inject exactly one transient corruption somewhere in the middle of
	// the work: DMR detects it, the engine retries, the output is exact.
	rng := rand.New(rand.NewSource(11))
	alu, _ := fault.NewOnceAfter(5000, fault.BitFlip{Bit: 29}, rng)
	ops, _ := NewTemporalDMR(alu)
	e, _ := NewEngine(ops, nil)
	got, err := Conv2D(e, in, fl, bias, spec)
	if err != nil {
		t.Fatalf("conv with single corrected fault: %v", err)
	}
	if !want.Equal(got) {
		t.Error("single transient fault must be fully corrected by one-op rollback")
	}
	st := e.Stats()
	if st.Retries != 1 || st.Failed != 1 {
		t.Errorf("stats = %+v, want exactly one retry", st)
	}
	if !alu.Fired() {
		t.Error("fault was never injected — test is vacuous")
	}
}

func TestReliableConvAbortsOnPersistentErrors(t *testing.T) {
	in, fl, bias := newTestConv(t, 12, 2, 10, 10, 3, 3)
	rng := rand.New(rand.NewSource(13))
	alu, _ := fault.NewTransient(1, fault.WordRandom{}, rng)
	ops, _ := NewTemporalDMR(alu)
	e, _ := NewEngine(ops, nil)
	_, err := Conv2D(e, in, fl, bias, ConvSpec{Stride: 1})
	if !errors.Is(err, ErrBucketTripped) {
		t.Fatalf("want ErrBucketTripped, got %v", err)
	}
}

func TestMACCount(t *testing.T) {
	in := tensor.MustNew(3, 227, 227)
	fl := tensor.MustNew(96, 3, 11, 11)
	n, err := MACCount(in, fl, ConvSpec{Stride: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 96 × 55 × 55 × 3 × 11 × 11 = 105,415,200 — the first AlexNet layer.
	if n != 105415200 {
		t.Errorf("MACCount = %d, want 105415200", n)
	}
	if _, err := MACCount(in, fl, ConvSpec{Stride: 0}); err == nil {
		t.Error("invalid spec should fail")
	}
}

func TestCheckpointedRunCleanFirstAttempt(t *testing.T) {
	out := tensor.MustFromSlice([]float32{1, 2, 3}, 3)
	res, err := CheckpointedRun(func() (*tensor.Tensor, error) { return out.Clone(), nil }, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 || res.Rollbacks != 0 || res.OpsExecuted != 200 {
		t.Errorf("res = %+v", res)
	}
	if !res.Output.Equal(out) {
		t.Error("output mismatch")
	}
}

func TestCheckpointedRunRollsBackOnce(t *testing.T) {
	calls := 0
	unit := func() (*tensor.Tensor, error) {
		calls++
		v := float32(1)
		if calls == 1 {
			v = 999 // first execution corrupted → first attempt mismatches
		}
		return tensor.MustFromSlice([]float32{v}, 1), nil
	}
	res, err := CheckpointedRun(unit, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 || res.Rollbacks != 1 || res.OpsExecuted != 40 {
		t.Errorf("res = %+v", res)
	}
}

func TestCheckpointedRunExhausts(t *testing.T) {
	calls := 0
	unit := func() (*tensor.Tensor, error) {
		calls++
		return tensor.MustFromSlice([]float32{float32(calls)}, 1), nil
	}
	_, err := CheckpointedRun(unit, 3, 10)
	if !errors.Is(err, ErrRollbackExhausted) {
		t.Fatalf("want ErrRollbackExhausted, got %v", err)
	}
}

func TestCheckpointedRunValidation(t *testing.T) {
	if _, err := CheckpointedRun(nil, 1, 1); err == nil {
		t.Error("nil unit should fail")
	}
	unit := func() (*tensor.Tensor, error) { return tensor.MustNew(1), nil }
	if _, err := CheckpointedRun(unit, 0, 1); err == nil {
		t.Error("maxAttempts 0 should fail")
	}
	bad := func() (*tensor.Tensor, error) { return nil, errors.New("boom") }
	if _, err := CheckpointedRun(bad, 1, 1); err == nil {
		t.Error("unit error should propagate")
	}
}

func TestUnprotectedRun(t *testing.T) {
	res, err := UnprotectedRun(func() (*tensor.Tensor, error) {
		return tensor.MustFromSlice([]float32{5}, 1), nil
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.OpsExecuted != 42 || res.Attempts != 1 {
		t.Errorf("res = %+v", res)
	}
	if _, err := UnprotectedRun(nil, 1); err == nil {
		t.Error("nil unit should fail")
	}
	if _, err := UnprotectedRun(func() (*tensor.Tensor, error) {
		return nil, errors.New("boom")
	}, 1); err == nil {
		t.Error("unit error should propagate")
	}
}

// Property: the bucket level is never negative and never exceeds
// peak; the trip latch is monotone.
func TestQuickBucketInvariants(t *testing.T) {
	f := func(events []bool) bool {
		b := NewDefaultBucket()
		wasTripped := false
		for _, fail := range events {
			if fail {
				b.Fail()
			} else {
				b.OK()
			}
			if b.Level() < 0 || b.Level() > b.Peak() {
				return false
			}
			if wasTripped && !b.Tripped() {
				return false // latch must be monotone
			}
			wasTripped = b.Tripped()
		}
		return b.Errors()+b.OKs() == uint64(len(events))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: with an ideal ALU, every operator variant agrees with plain
// arithmetic and always qualifies.
func TestQuickOpsAgreeOnIdealHardware(t *testing.T) {
	plain, _ := NewPlain(fault.Ideal{})
	tdmr, _ := NewTemporalDMR(fault.Ideal{})
	sdmr, _ := NewSpatialDMR(fault.Ideal{}, fault.Ideal{})
	tmr, _ := NewTMR(fault.Ideal{}, fault.Ideal{}, fault.Ideal{})
	f := func(a, b float32) bool {
		want := a * b
		for _, ops := range []Ops{plain, tdmr, sdmr, tmr} {
			v, ok := ops.Mul(a, b)
			if !ok {
				return false
			}
			// NaN-safe comparison: compare bit patterns via equality of
			// both being NaN or equal values.
			if v != want && !(v != v && want != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
