package reliable

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/tensor"
)

func TestDegradingOpsHealthyVoting(t *testing.T) {
	d, err := NewDegradingOps(fault.Ideal{}, fault.Ideal{}, fault.Ideal{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Level() != DegradeTMR {
		t.Fatalf("initial level = %v", d.Level())
	}
	v, ok := d.Mul(3, 4)
	if v != 12 || !ok {
		t.Errorf("Mul = %v,%v", v, ok)
	}
	v, ok = d.Add(3, 4)
	if v != 7 || !ok {
		t.Errorf("Add = %v,%v", v, ok)
	}
	if d.Name() == "" {
		t.Error("empty name")
	}
}

func TestDegradingOpsValidation(t *testing.T) {
	if _, err := NewDegradingOps(nil, fault.Ideal{}, fault.Ideal{}, 1); err == nil {
		t.Error("nil ALU should fail")
	}
	if _, err := NewDegradingOps(fault.Ideal{}, fault.Ideal{}, fault.Ideal{}, 0); err == nil {
		t.Error("threshold 0 should fail")
	}
}

func TestDegradingOpsExcludesPermanentlyFaultyPE(t *testing.T) {
	bad, err := fault.NewPermanent(fault.StuckAt{Bit: 22, Value: true})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDegradingOps(fault.Ideal{}, bad, fault.Ideal{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var ideal fault.Ideal
	rng := rand.New(rand.NewSource(1))
	// While the faulty PE dissents, results stay correct (masked) until it
	// is excluded; afterwards the operator runs as DMR on the survivors.
	for i := 0; i < 200; i++ {
		a, b := rng.Float32(), rng.Float32()
		v, ok := d.Mul(a, b)
		if !ok {
			t.Fatalf("iteration %d: vote failed with one faulty PE", i)
		}
		if v != ideal.Mul(a, b) {
			t.Fatalf("iteration %d: wrong voted value", i)
		}
		if d.Level() == DegradeDMR {
			break
		}
	}
	if d.Level() != DegradeDMR {
		t.Fatalf("faulty PE was never excluded: level %v, dissents %v %v %v",
			d.Level(), d.Dissents(0), d.Dissents(1), d.Dissents(2))
	}
	if d.Healthy(1) {
		t.Error("PE 1 should be excluded")
	}
	if !d.Healthy(0) || !d.Healthy(2) {
		t.Error("healthy PEs should remain included")
	}
	// Reduced mode keeps producing correct, qualified results.
	for i := 0; i < 100; i++ {
		a, b := rng.Float32(), rng.Float32()
		v, ok := d.Add(a, b)
		if !ok || v != ideal.Add(a, b) {
			t.Fatal("post-degradation DMR should agree on healthy PEs")
		}
	}
	if d.Healthy(-1) || d.Healthy(3) {
		t.Error("out-of-range PEs should report unhealthy")
	}
	if d.Dissents(-1) != 0 {
		t.Error("out-of-range dissents should be 0")
	}
}

func TestDegradingOpsSimplexFloor(t *testing.T) {
	// Two permanently faulty PEs with different defects: the operator must
	// degrade all the way to simplex on the healthy PE and keep answering.
	bad1, _ := fault.NewPermanent(fault.StuckAt{Bit: 22, Value: true})
	bad2, _ := fault.NewPermanent(fault.StuckAt{Bit: 21, Value: true})
	d, err := NewDegradingOps(bad1, fault.Ideal{}, bad2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var ideal fault.Ideal
	correctAfterSimplex := 0
	for i := 0; i < 500; i++ {
		a, b := rng.Float32(), rng.Float32()
		v, _ := d.Mul(a, b)
		if d.Level() == DegradeSimplex {
			if v == ideal.Mul(a, b) {
				correctAfterSimplex++
			}
			if correctAfterSimplex > 20 {
				break
			}
		}
	}
	if d.Level() != DegradeSimplex {
		t.Fatalf("did not reach simplex: %v (healthy %v %v %v)",
			d.Level(), d.Healthy(0), d.Healthy(1), d.Healthy(2))
	}
	if d.Healthy(1) != true {
		t.Error("the ideal PE should be the survivor — diagnosis misfired")
	}
	if correctAfterSimplex == 0 {
		t.Error("simplex mode on the healthy PE should produce correct results")
	}
}

func TestDegradingOpsWithEngineConv(t *testing.T) {
	// Full integration: reliable convolution over a degrading operator with
	// one permanently faulty PE — output stays exact, the PE gets excluded
	// mid-convolution, and the engine records zero unrecovered failures.
	rng := rand.New(rand.NewSource(3))
	in := tensor.MustNew(2, 8, 8)
	in.FillUniform(rng, 0, 1)
	filters := tensor.MustNew(2, 2, 3, 3)
	filters.FillUniform(rng, -0.5, 0.5)
	spec := ConvSpec{Stride: 1}
	want, err := NativeConv2D(in, filters, nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := fault.NewPermanent(fault.StuckAt{Bit: 22, Value: true})
	d, err := NewDegradingOps(fault.Ideal{}, fault.Ideal{}, bad, 8)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Conv2D(engine, in, filters, nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Error("degrading TMR should keep the convolution exact")
	}
	if d.Level() != DegradeDMR {
		t.Errorf("level = %v, want dmr after exclusion", d.Level())
	}
	if engine.Bucket().Tripped() {
		t.Error("bucket should not trip while degradation masks the fault")
	}
}

func TestDegradeLevelString(t *testing.T) {
	for _, l := range []DegradeLevel{DegradeTMR, DegradeDMR, DegradeSimplex, DegradeLevel(9)} {
		if l.String() == "" {
			t.Error("empty level string")
		}
	}
}
