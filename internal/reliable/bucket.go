package reliable

import "fmt"

// LeakyBucket is the error counter of Algorithm 3, following the leaky-bucket
// fault-tolerance pattern the paper cites: every incorrect operation raises
// the level by Factor and the execution is declared failed when the level
// reaches Ceiling; every correct operation lowers the level by one, floor
// zero.
//
// With the default Factor = 2 and Ceiling = 3 a stream of correctly executed
// operations "will cancel one, but not two successive errors" — the exact
// behaviour the paper states: one error raises the level to 2 (< 3, execution
// continues and the level drains), while a second error before the first has
// fully drained reaches ≥ 3 and trips the bucket.
type LeakyBucket struct {
	// Factor is added to the level on every incorrect operation.
	Factor int
	// Ceiling is the level at which the execution is declared failed.
	Ceiling int

	level   int
	peak    int
	errors  uint64
	oks     uint64
	tripped bool
}

// DefaultFactor and DefaultCeiling reproduce the paper's "one but not two
// successive errors" semantics.
const (
	DefaultFactor  = 2
	DefaultCeiling = 3
)

// NewLeakyBucket returns a bucket with the given parameters. Factor and
// ceiling must be positive, and factor must be below the ceiling (otherwise
// the very first error is fatal and the bucket degenerates to fail-fast —
// allowed, but requested explicitly via NewFailFastBucket).
func NewLeakyBucket(factor, ceiling int) (*LeakyBucket, error) {
	if factor < 1 {
		return nil, fmt.Errorf("reliable: bucket factor %d must be >= 1", factor)
	}
	if ceiling < 1 {
		return nil, fmt.Errorf("reliable: bucket ceiling %d must be >= 1", ceiling)
	}
	return &LeakyBucket{Factor: factor, Ceiling: ceiling}, nil
}

// NewDefaultBucket returns a bucket with the paper's semantics
// (factor 2, ceiling 3).
func NewDefaultBucket() *LeakyBucket {
	b, err := NewLeakyBucket(DefaultFactor, DefaultCeiling)
	if err != nil {
		// Unreachable: the defaults are valid by construction.
		panic(err)
	}
	return b
}

// NewFailFastBucket returns a bucket that trips on the first error
// (factor = ceiling = 1), used as the strictest comparison point in the
// ablation benchmarks.
func NewFailFastBucket() *LeakyBucket {
	return &LeakyBucket{Factor: 1, Ceiling: 1}
}

// Fail records an incorrect operation: the level rises by Factor and is
// checked against Ceiling. It returns true when the bucket trips (execution
// must be declared failed). Once tripped, the bucket stays tripped until
// Reset.
func (b *LeakyBucket) Fail() bool {
	b.errors++
	b.level += b.factor()
	if b.level > b.peak {
		b.peak = b.level
	}
	if b.level >= b.ceiling() {
		b.tripped = true
	}
	return b.tripped
}

// OK records a correctly executed operation: the level drops by one, floor
// zero (lines 18–19 of Algorithm 3).
func (b *LeakyBucket) OK() {
	b.oks++
	if b.level > 0 {
		b.level--
	}
}

func (b *LeakyBucket) factor() int {
	if b.Factor < 1 {
		return DefaultFactor
	}
	return b.Factor
}

func (b *LeakyBucket) ceiling() int {
	if b.Ceiling < 1 {
		return DefaultCeiling
	}
	return b.Ceiling
}

// Tripped reports whether the bucket has reached its ceiling.
func (b *LeakyBucket) Tripped() bool { return b.tripped }

// Level returns the current bucket level.
func (b *LeakyBucket) Level() int { return b.level }

// Peak returns the highest level reached since the last Reset.
func (b *LeakyBucket) Peak() int { return b.peak }

// Errors returns the number of incorrect operations recorded.
func (b *LeakyBucket) Errors() uint64 { return b.errors }

// OKs returns the number of correct operations recorded.
func (b *LeakyBucket) OKs() uint64 { return b.oks }

// Reset drains the bucket and clears the trip latch and statistics.
func (b *LeakyBucket) Reset() {
	b.level, b.peak, b.errors, b.oks, b.tripped = 0, 0, 0, 0, false
}

// Snapshot captures the bucket's counters for reports.
type Snapshot struct {
	Level   int
	Peak    int
	Errors  uint64
	OKs     uint64
	Tripped bool
}

// Snapshot returns the current counters.
func (b *LeakyBucket) Snapshot() Snapshot {
	return Snapshot{Level: b.level, Peak: b.peak, Errors: b.errors, OKs: b.oks, Tripped: b.tripped}
}

// String renders the bucket state for diagnostics.
func (b *LeakyBucket) String() string {
	return fmt.Sprintf("bucket(level=%d/%d factor=%d errors=%d oks=%d tripped=%v)",
		b.level, b.ceiling(), b.factor(), b.errors, b.oks, b.tripped)
}
