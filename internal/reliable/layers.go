package reliable

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// This file extends reliable execution beyond the single convolution of the
// paper's implementation to the other layer types of a CNN prefix — the
// direction Section V flags as future work: "it is worthwhile investigating
// under what conditions subsequent layers of the CNN can be harnessed".
//
// MACs (convolution, dense) run through the overloaded multiply/accumulate
// protocol. Comparison-based layers (ReLU, max pooling) are protected by
// redundant comparison: the comparison is evaluated twice through the
// engine's Add operator (a − b computed redundantly), so a transient fault
// in the comparison datapath is detected exactly like an arithmetic fault.

// Dense executes a fully connected layer y = Wx + b reliably. weight is
// (out, in), bias may be nil or length out, x is flat.
func Dense(e *Engine, x, weight *tensor.Tensor, bias []float32) (*tensor.Tensor, error) {
	if e == nil {
		return nil, fmt.Errorf("reliable: dense needs an engine")
	}
	if weight.Rank() != 2 {
		return nil, fmt.Errorf("reliable: dense weight must be rank 2, got %v", weight.Shape())
	}
	out, in := weight.Dim(0), weight.Dim(1)
	if x.Rank() != 1 || x.Dim(0) != in {
		return nil, fmt.Errorf("reliable: dense wants (%d) input, got %v", in, x.Shape())
	}
	if bias != nil && len(bias) != out {
		return nil, fmt.Errorf("reliable: dense bias length %d != %d", len(bias), out)
	}
	y, err := tensor.New(out)
	if err != nil {
		return nil, err
	}
	xd, wd, yd := x.Data(), weight.Data(), y.Data()
	for o := 0; o < out; o++ {
		var acc float32
		if bias != nil {
			acc = bias[o]
		}
		row := o * in
		for i := 0; i < in; i++ {
			acc, err = e.MAC(acc, xd[i], wd[row+i])
			if err != nil {
				return nil, fmt.Errorf("reliable: dense output %d: %w", o, err)
			}
		}
		yd[o] = acc
	}
	return y, nil
}

// Greater reliably evaluates a > b: the difference a − b is computed through
// the engine's overloaded subtraction (Add with a negated operand), so the
// comparison inherits the redundancy mode's detection and the retry/bucket
// protocol.
func Greater(e *Engine, a, b float32) (bool, error) {
	d, err := e.Add(a, -b)
	if err != nil {
		return false, err
	}
	return d > 0, nil
}

// ReLU executes the rectifier reliably: each element's sign test goes
// through the redundant comparison.
func ReLU(e *Engine, x *tensor.Tensor) (*tensor.Tensor, error) {
	if e == nil {
		return nil, fmt.Errorf("reliable: relu needs an engine")
	}
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		pos, err := Greater(e, v, 0)
		if err != nil {
			return nil, fmt.Errorf("reliable: relu element %d: %w", i, err)
		}
		if !pos {
			d[i] = 0
		}
	}
	return out, nil
}

// MaxPool2D executes max pooling reliably on a CHW input: every window
// comparison is a redundant comparison.
func MaxPool2D(e *Engine, x *tensor.Tensor, k, stride int) (*tensor.Tensor, error) {
	if e == nil {
		return nil, fmt.Errorf("reliable: maxpool needs an engine")
	}
	if x.Rank() != 3 {
		return nil, fmt.Errorf("reliable: maxpool wants CHW input, got %v", x.Shape())
	}
	if k < 1 || stride < 1 {
		return nil, fmt.Errorf("reliable: maxpool window %d / stride %d must be >= 1", k, stride)
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	if h < k || w < k {
		return nil, fmt.Errorf("reliable: maxpool window %d does not fit %dx%d", k, h, w)
	}
	outH := (h-k)/stride + 1
	outW := (w-k)/stride + 1
	out, err := tensor.New(c, outH, outW)
	if err != nil {
		return nil, err
	}
	in, od := x.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				best := float32(math.Inf(-1))
				for ky := 0; ky < k; ky++ {
					row := base + (oy*stride+ky)*w
					for kx := 0; kx < k; kx++ {
						v := in[row+ox*stride+kx]
						gt, err := Greater(e, v, best)
						if err != nil {
							return nil, fmt.Errorf("reliable: maxpool (%d,%d,%d): %w", ch, oy, ox, err)
						}
						if gt {
							best = v
						}
					}
				}
				od[(ch*outH+oy)*outW+ox] = best
			}
		}
	}
	return out, nil
}

// LRN executes AlexNet's local response normalisation reliably. The squares
// and the window sums run through the overloaded operators; the power
// denominator uses exp/log in float64 (a bounded elementary function —
// on the FPGA target this is a lookup table, which the paper's methodology
// treats as a verified deterministic block).
func LRN(e *Engine, x *tensor.Tensor, n int, k, alpha, beta float64) (*tensor.Tensor, error) {
	if e == nil {
		return nil, fmt.Errorf("reliable: lrn needs an engine")
	}
	if x.Rank() != 3 {
		return nil, fmt.Errorf("reliable: lrn wants CHW input, got %v", x.Shape())
	}
	if n < 1 || beta <= 0 {
		return nil, fmt.Errorf("reliable: lrn window %d / beta %v invalid", n, beta)
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	out, err := tensor.New(c, h, w)
	if err != nil {
		return nil, err
	}
	in, od := x.Data(), out.Data()
	half := n / 2
	hw := h * w
	// Reliably squared activations.
	sq := make([]float32, len(in))
	for i, v := range in {
		s, err := e.Mul(v, v)
		if err != nil {
			return nil, fmt.Errorf("reliable: lrn square %d: %w", i, err)
		}
		sq[i] = s
	}
	for pos := 0; pos < hw; pos++ {
		for ch := 0; ch < c; ch++ {
			lo, hi := ch-half, ch+half
			if lo < 0 {
				lo = 0
			}
			if hi >= c {
				hi = c - 1
			}
			var ss float32
			for j := lo; j <= hi; j++ {
				ss, err = e.Add(ss, sq[j*hw+pos])
				if err != nil {
					return nil, fmt.Errorf("reliable: lrn sum (%d,%d): %w", ch, pos, err)
				}
			}
			idx := ch*hw + pos
			denom := math.Pow(k+alpha/float64(n)*float64(ss), -beta)
			v, err := e.Mul(in[idx], float32(denom))
			if err != nil {
				return nil, fmt.Errorf("reliable: lrn scale (%d,%d): %w", ch, pos, err)
			}
			od[idx] = v
		}
	}
	return out, nil
}
