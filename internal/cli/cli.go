// Package cli holds the model-loading and network-construction plumbing
// shared by the hybridnet CLI and the hybridnetd daemon, so the two
// binaries cannot drift apart on how a hybrid network is assembled — plus
// the worker-mode address-report protocol (WriteAddrReport /
// ParseAddrReport) the hybridnet-router supervisor uses to learn a spawned
// worker's kernel-assigned port from its stdout.
//
// # Concurrency contract
//
// Everything here is a pure constructor or a stateless formatter: each call
// builds fresh state from its arguments (seeded RNGs included) and shares
// nothing, so all functions are safe to call from any number of goroutines.
// The networks they return carry their own concurrency rules — see
// internal/nn (immutable weights + per-call Context) and internal/core.
package cli

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/onnxlite"
	"repro/internal/shape"
)

// StandardHybridConfig is the canonical CLI assembly: bifurcated wiring,
// temporal DMR, and the stop sign as the safety-critical class that must be
// qualified as an octagon.
func StandardHybridConfig(pair core.SobelPair) core.Config {
	return core.Config{
		Wiring: core.WiringBifurcated, Mode: core.ModeTemporalDMR,
		Pair:          pair,
		SafetyClasses: map[int]shape.Class{gtsrb.StopClass: shape.ClassOctagon},
	}
}

// LoadHybrid reads an onnxlite model document and assembles the hybrid
// network it describes. The seed feeds layer construction randomness
// (dropout streams); the imported weights themselves are deterministic.
func LoadHybrid(path string, seed int64) (*core.HybridNetwork, *nn.Sequential, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	model, err := onnxlite.ReadModel(f)
	if err != nil {
		return nil, nil, err
	}
	net, cfg, err := onnxlite.Import(model, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, err
	}
	if cfg == nil {
		return nil, nil, fmt.Errorf("model %s carries no reliability annotations", path)
	}
	h, err := core.NewHybridNetwork(*cfg, net)
	if err != nil {
		return nil, nil, err
	}
	return h, net, nil
}

// NewBatchClassifier builds the persistent serving classifier for a hybrid
// network from CLI-level knobs: workers is the inference pool size (0 = all
// cores) and subBatch the per-worker NCHW micro-batch cap for the batched
// CNN stage (0 = batch/workers). Shared by the serving binaries so the
// -workers/-subbatch flag semantics cannot drift from the engine config.
func NewBatchClassifier(h *core.HybridNetwork, workers, subBatch int) (*core.BatchClassifier, error) {
	return h.NewBatchClassifierConfig(core.ClassifierConfig{Workers: workers, SubBatch: subBatch})
}

// DemoHybrid builds an untrained micro network with the Sobel pair
// installed and wraps it in the standard hybrid assembly. It exists for
// smoke tests and demo serving (hybridnetd -demo): the reliable path,
// qualifier and decision logic are all real, only the CNN weights are
// random.
func DemoHybrid(size, filters int, seed int64) (*core.HybridNetwork, *nn.Sequential, error) {
	rng := rand.New(rand.NewSource(seed))
	cfg := nn.DefaultMicroConfig()
	cfg.InputSize = size
	cfg.Conv1Filters = filters
	net, err := nn.NewMicroAlexNet(cfg, rng)
	if err != nil {
		return nil, nil, err
	}
	conv1, err := nn.FirstConv(net)
	if err != nil {
		return nil, nil, err
	}
	pair, err := core.InstallSobelPair(conv1, 0, 1)
	if err != nil {
		return nil, nil, err
	}
	h, err := core.NewHybridNetwork(StandardHybridConfig(pair), net)
	if err != nil {
		return nil, nil, err
	}
	return h, net, nil
}
