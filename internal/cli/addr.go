package cli

import (
	"fmt"
	"io"
	"strings"
)

// addrReportPrefix marks the one line a supervised hybridnetd worker writes
// to stdout once its listener is bound. The router spawns workers with
// `-addr 127.0.0.1:0` and learns the kernel-assigned port from this line;
// everything else the daemon prints goes to stderr, so stdout stays a
// single-purpose control channel. Shared here so the daemon and the router
// cannot drift apart on the format.
const addrReportPrefix = "HYBRIDNETD_ADDR="

// WriteAddrReport emits the bound-address report line for addr (host:port).
func WriteAddrReport(w io.Writer, addr string) error {
	_, err := fmt.Fprintf(w, "%s%s\n", addrReportPrefix, addr)
	return err
}

// ParseAddrReport extracts the bound address from one line of worker
// stdout. The second return is false for any line that is not a report.
func ParseAddrReport(line string) (string, bool) {
	line = strings.TrimSpace(line)
	rest, found := strings.CutPrefix(line, addrReportPrefix)
	if !found || rest == "" {
		return "", false
	}
	return rest, true
}
