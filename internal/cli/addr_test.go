package cli

import (
	"bytes"
	"strings"
	"testing"
)

// TestAddrReportRoundTrip pins the daemon↔router control-channel format: a
// written report parses back to the same address, and ordinary log or junk
// lines never parse as one.
func TestAddrReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAddrReport(&buf, "127.0.0.1:43521"); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") {
		t.Fatalf("report %q not newline-terminated", line)
	}
	addr, ok := ParseAddrReport(line)
	if !ok || addr != "127.0.0.1:43521" {
		t.Fatalf("round trip gave (%q, %v)", addr, ok)
	}
	for _, junk := range []string{
		"",
		"hybridnetd listening on 127.0.0.1:8080",
		"HYBRIDNETD_ADDR=",
		"XHYBRIDNETD_ADDR=1.2.3.4:5",
	} {
		if got, ok := ParseAddrReport(junk); ok {
			t.Errorf("junk line %q parsed as %q", junk, got)
		}
	}
	// Surrounding whitespace from line scanning is tolerated.
	if addr, ok := ParseAddrReport("  HYBRIDNETD_ADDR=[::1]:9\r\n"); !ok || addr != "[::1]:9" {
		t.Errorf("whitespace-wrapped report gave (%q, %v)", addr, ok)
	}
}
