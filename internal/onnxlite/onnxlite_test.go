package onnxlite

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/shape"
	"repro/internal/tensor"
)

func buildNet(t *testing.T, seed int64) *nn.Sequential {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 16, Conv1Filters: 4, Conv1Kernel: 3,
		Conv2Filters: 4, Hidden: 8, Classes: 3, UseLRN: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func hybridCfg() *core.Config {
	return &core.Config{
		Wiring: core.WiringBifurcated, Mode: core.ModeTemporalDMR,
		BucketFactor: 2, BucketCeiling: 3,
		Pair:          core.SobelPair{XIdx: 0, YIdx: 1},
		SobelKernel:   3,
		SafetyClasses: map[int]shape.Class{gtsrb.StopClass: shape.ClassOctagon},
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	net := buildNet(t, 1)
	m, err := Export(net, hybridCfg())
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != FormatVersion || len(m.Layers) != net.Len() {
		t.Fatalf("model header wrong: version %d, %d layers", m.Version, len(m.Layers))
	}

	var buf bytes.Buffer
	if err := Write(m, &buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	net2, cfg2, err := Import(m2, rand.New(rand.NewSource(999)))
	if err != nil {
		t.Fatal(err)
	}
	if cfg2 == nil {
		t.Fatal("reliability config lost")
	}
	if cfg2.Wiring != core.WiringBifurcated || cfg2.Mode != core.ModeTemporalDMR {
		t.Errorf("wiring/mode lost: %v %v", cfg2.Wiring, cfg2.Mode)
	}
	if cfg2.Pair != (core.SobelPair{XIdx: 0, YIdx: 1}) {
		t.Errorf("sobel pair lost: %+v", cfg2.Pair)
	}
	if cfg2.SafetyClasses[gtsrb.StopClass] != shape.ClassOctagon {
		t.Error("safety class table lost")
	}
	if cfg2.BucketFactor != 2 || cfg2.BucketCeiling != 3 {
		t.Error("bucket parameters lost")
	}

	// Weight fidelity: identical outputs on identical inputs.
	rng := rand.New(rand.NewSource(7))
	x := tensor.MustNew(3, 16, 16)
	x.FillUniform(rng, 0, 1)
	nctx := nn.NewContext()
	a, err := net.Forward(nctx, x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net2.Forward(nn.NewContext(), x)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("imported network computes different outputs")
	}
}

func TestExportWithoutReliability(t *testing.T) {
	net := buildNet(t, 2)
	m, err := Export(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reliability != nil {
		t.Error("no reliability should be emitted")
	}
	net2, cfg, err := Import(m, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if cfg != nil {
		t.Error("config should be nil without annotations")
	}
	if net2.Len() != net.Len() {
		t.Error("layer count changed")
	}
}

func TestExportValidation(t *testing.T) {
	if _, err := Export(nil, nil); err == nil {
		t.Error("nil net should fail")
	}
	net := buildNet(t, 4)
	bad := hybridCfg()
	bad.Wiring = core.Wiring(0)
	if _, err := Export(net, bad); err == nil {
		t.Error("unknown wiring should fail")
	}
	bad = hybridCfg()
	bad.Mode = core.RedundancyMode(0)
	if _, err := Export(net, bad); err == nil {
		t.Error("unknown mode should fail")
	}
	bad = hybridCfg()
	bad.SafetyClasses = map[int]shape.Class{0: shape.Class(99)}
	if _, err := Export(net, bad); err == nil {
		t.Error("unknown shape should fail")
	}
}

func TestImportValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, _, err := Import(nil, rng); err == nil {
		t.Error("nil model should fail")
	}
	if _, _, err := Import(&Model{Version: 99}, rng); err == nil {
		t.Error("wrong version should fail")
	}
	if _, _, err := Import(&Model{Version: 1}, rng); err == nil {
		t.Error("no layers should fail")
	}
	net := buildNet(t, 6)
	m, err := Export(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Import(m, nil); err == nil {
		t.Error("nil rng should fail")
	}
	// Unknown layer type.
	m2 := *m
	m2.Layers = append([]LayerDesc(nil), m.Layers...)
	m2.Layers[0].Type = "mystery"
	if _, _, err := Import(&m2, rng); err == nil {
		t.Error("unknown layer type should fail")
	}
	// Corrupt weights.
	m3 := *m
	m3.Layers = append([]LayerDesc(nil), m.Layers...)
	m3.Layers[0].Weights = map[string]string{"weight": "!!!not base64!!!", "bias": "x"}
	if _, _, err := Import(&m3, rng); err == nil {
		t.Error("corrupt weights should fail")
	}
	// Missing weights.
	m4 := *m
	m4.Layers = append([]LayerDesc(nil), m.Layers...)
	m4.Layers[0].Weights = nil
	if _, _, err := Import(&m4, rng); err == nil {
		t.Error("missing weights should fail")
	}
	// Bad reliability block.
	m5 := *m
	m5.Reliability = &ReliabilityDesc{Wiring: "weird", Mode: "plain"}
	if _, _, err := Import(&m5, rng); err == nil {
		t.Error("unknown wiring name should fail")
	}
	m6 := *m
	m6.Reliability = &ReliabilityDesc{Wiring: "parallel", Mode: "weird"}
	if _, _, err := Import(&m6, rng); err == nil {
		t.Error("unknown mode name should fail")
	}
	m7 := *m
	m7.Reliability = &ReliabilityDesc{Wiring: "parallel", Mode: "plain", SobelPair: []int{1}}
	if _, _, err := Import(&m7, rng); err == nil {
		t.Error("1-entry sobel pair should fail")
	}
	m8 := *m
	m8.Reliability = &ReliabilityDesc{Wiring: "parallel", Mode: "plain",
		SafetyClasses: map[string]string{"0": "weird"}}
	if _, _, err := Import(&m8, rng); err == nil {
		t.Error("unknown shape name should fail")
	}
	m9 := *m
	m9.Reliability = &ReliabilityDesc{Wiring: "parallel", Mode: "plain",
		SafetyClasses: map[string]string{"abc": "octagon"}}
	if _, _, err := Import(&m9, rng); err == nil {
		t.Error("non-numeric class key should fail")
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	if _, err := ReadModel(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON should fail")
	}
}

func TestDocumentIsHumanReadable(t *testing.T) {
	net := buildNet(t, 7)
	m, err := Export(net, hybridCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(m, &buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, want := range []string{
		`"version": 1`, `"type": "conv2d"`, `"type": "lrn"`,
		`"wiring": "bifurcated"`, `"mode": "temporal-dmr"`,
		`"safety_classes"`, `"octagon"`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %q", want)
		}
	}
}

// The full hybrid round trip: export a hybrid network, import it, and verify
// the rebuilt hybrid produces the same qualifier verdict.
func TestHybridRoundTripBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 64, Conv1Filters: 6, Conv1Kernel: 5,
		Conv2Filters: 6, Hidden: 12, Classes: 6, UseLRN: false,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	conv1, err := nn.FirstConv(net)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := core.InstallSobelPair(conv1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Wiring: core.WiringBifurcated, Mode: core.ModePlain,
		Pair:          pair,
		SafetyClasses: map[int]shape.Class{gtsrb.StopClass: shape.ClassOctagon},
	}
	h1, err := core.NewHybridNetwork(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Export(net, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	net2, cfg2, err := Import(m, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := core.NewHybridNetwork(*cfg2, net2)
	if err != nil {
		t.Fatal(err)
	}
	img, err := gtsrb.AngledStopSign(64, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := h1.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h2.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Class != r2.Class || r1.Decision != r2.Decision || r1.Qualifier.Class != r2.Qualifier.Class {
		t.Errorf("round-tripped hybrid disagrees: (%d,%v,%v) vs (%d,%v,%v)",
			r1.Class, r1.Decision, r1.Qualifier.Class,
			r2.Class, r2.Decision, r2.Qualifier.Class)
	}
}
