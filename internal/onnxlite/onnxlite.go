// Package onnxlite implements the paper's future-work proposal of a
// "platform-agnostic description of hybrid-CNNs" (Section V-B suggests
// "researching extensions to the ONNX standard"): a versioned JSON model
// format that carries the network topology, the weights, AND the
// reliability annotations a hybrid CNN needs — the partition wiring, the
// redundancy mode, the leaky-bucket parameters, the Sobel-pair location and
// the safety-class/shape qualification table.
//
// The format is deliberately self-contained (weights embedded base64) so a
// single document fully reproduces a deployed hybrid network.
package onnxlite

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/shape"
	"repro/internal/tensor"
)

// FormatVersion is the current document version.
const FormatVersion = 1

// Model is the top-level document.
type Model struct {
	Version     int              `json:"version"`
	Name        string           `json:"name"`
	Layers      []LayerDesc      `json:"layers"`
	Reliability *ReliabilityDesc `json:"reliability,omitempty"`
}

// LayerDesc describes one layer. Fields are populated according to Type.
type LayerDesc struct {
	Type string `json:"type"` // conv2d | relu | lrn | maxpool | dense | dropout | flatten
	Name string `json:"name"`

	// conv2d
	InChannels int `json:"in_channels,omitempty"`
	Filters    int `json:"filters,omitempty"`
	Kernel     int `json:"kernel,omitempty"`
	Stride     int `json:"stride,omitempty"`
	Pad        int `json:"pad,omitempty"`

	// dense
	In  int `json:"in,omitempty"`
	Out int `json:"out,omitempty"`

	// dropout
	Rate float32 `json:"rate,omitempty"`

	// lrn
	Window int     `json:"window,omitempty"`
	K      float64 `json:"k,omitempty"`
	Alpha  float64 `json:"alpha,omitempty"`
	Beta   float64 `json:"beta,omitempty"`

	// Weights maps parameter suffix ("weight", "bias") to the base64 of
	// the HTN1 tensor encoding.
	Weights map[string]string `json:"weights,omitempty"`
}

// ReliabilityDesc carries the hybrid annotations.
type ReliabilityDesc struct {
	Wiring           string            `json:"wiring"` // parallel | bifurcated
	Mode             string            `json:"mode"`   // plain | temporal-dmr | spatial-dmr | tmr
	BucketFactor     int               `json:"bucket_factor"`
	BucketCeiling    int               `json:"bucket_ceiling"`
	SobelPair        []int             `json:"sobel_pair,omitempty"` // [xIdx, yIdx]
	SobelKernel      int               `json:"sobel_kernel,omitempty"`
	DownsampleFactor int               `json:"downsample_factor,omitempty"`
	SafetyClasses    map[string]string `json:"safety_classes,omitempty"` // class index → shape name
}

var modeNames = map[core.RedundancyMode]string{
	core.ModePlain:       "plain",
	core.ModeTemporalDMR: "temporal-dmr",
	core.ModeSpatialDMR:  "spatial-dmr",
	core.ModeTMR:         "tmr",
}

var wiringNames = map[core.Wiring]string{
	core.WiringParallel:   "parallel",
	core.WiringBifurcated: "bifurcated",
}

var shapeNames = map[shape.Class]string{
	shape.ClassUnknown:  "unknown",
	shape.ClassCircle:   "circle",
	shape.ClassTriangle: "triangle",
	shape.ClassSquare:   "square",
	shape.ClassOctagon:  "octagon",
}

func invert[K comparable, V comparable](m map[K]V) map[V]K {
	out := make(map[V]K, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

var (
	modeByName   = invert(modeNames)
	wiringByName = invert(wiringNames)
	shapeByName  = invert(shapeNames)
)

func encodeTensor(t *tensor.Tensor) (string, error) {
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes()), nil
}

func decodeTensor(s string) (*tensor.Tensor, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("onnxlite: weight base64: %w", err)
	}
	return tensor.Read(bytes.NewReader(raw))
}

// Export converts a network (plus optional hybrid configuration) to a Model.
func Export(net *nn.Sequential, cfg *core.Config) (*Model, error) {
	if net == nil {
		return nil, fmt.Errorf("onnxlite: export needs a network")
	}
	m := &Model{Version: FormatVersion, Name: net.Name()}
	for i, l := range net.Layers() {
		var d LayerDesc
		d.Name = l.Name()
		switch v := l.(type) {
		case *nn.Conv2D:
			d.Type = "conv2d"
			d.InChannels = v.InChannels()
			d.Filters = v.Filters()
			d.Kernel = v.Kernel()
			d.Stride = v.Stride()
			d.Pad = v.Pad()
			w, err := encodeTensor(v.Weight())
			if err != nil {
				return nil, fmt.Errorf("onnxlite: layer %d weights: %w", i, err)
			}
			b, err := encodeTensor(v.Bias())
			if err != nil {
				return nil, fmt.Errorf("onnxlite: layer %d bias: %w", i, err)
			}
			d.Weights = map[string]string{"weight": w, "bias": b}
		case *nn.Dense:
			d.Type = "dense"
			d.In = v.In()
			d.Out = v.Out()
			w, err := encodeTensor(v.Weight())
			if err != nil {
				return nil, fmt.Errorf("onnxlite: layer %d weights: %w", i, err)
			}
			b, err := encodeTensor(v.Bias())
			if err != nil {
				return nil, fmt.Errorf("onnxlite: layer %d bias: %w", i, err)
			}
			d.Weights = map[string]string{"weight": w, "bias": b}
		case *nn.ReLU:
			d.Type = "relu"
		case *nn.Flatten:
			d.Type = "flatten"
		case *nn.MaxPool2D:
			d.Type = "maxpool"
			d.Kernel = v.Kernel()
			d.Stride = v.Stride()
		case *nn.Dropout:
			d.Type = "dropout"
			d.Rate = v.Rate()
		case *nn.LRN:
			d.Type = "lrn"
			d.Window = v.Window()
			d.K, d.Alpha, d.Beta = v.Constants()
		default:
			return nil, fmt.Errorf("onnxlite: layer %d has unsupported type %T", i, l)
		}
		m.Layers = append(m.Layers, d)
	}
	if cfg != nil {
		r := &ReliabilityDesc{
			BucketFactor:     cfg.BucketFactor,
			BucketCeiling:    cfg.BucketCeiling,
			SobelKernel:      cfg.SobelKernel,
			DownsampleFactor: cfg.DownsampleFactor,
		}
		var ok bool
		if r.Wiring, ok = wiringNames[cfg.Wiring]; !ok {
			return nil, fmt.Errorf("onnxlite: unknown wiring %d", int(cfg.Wiring))
		}
		if r.Mode, ok = modeNames[cfg.Mode]; !ok {
			return nil, fmt.Errorf("onnxlite: unknown mode %d", int(cfg.Mode))
		}
		if cfg.Wiring == core.WiringBifurcated {
			r.SobelPair = []int{cfg.Pair.XIdx, cfg.Pair.YIdx}
		}
		if len(cfg.SafetyClasses) > 0 {
			r.SafetyClasses = make(map[string]string, len(cfg.SafetyClasses))
			for class, sh := range cfg.SafetyClasses {
				name, ok := shapeNames[sh]
				if !ok {
					return nil, fmt.Errorf("onnxlite: unknown shape class %d", int(sh))
				}
				r.SafetyClasses[fmt.Sprintf("%d", class)] = name
			}
		}
		m.Reliability = r
	}
	return m, nil
}

// Import reconstructs the network (and hybrid configuration, if the document
// carries reliability annotations) from a Model. rng seeds layer
// construction; all weights are then overwritten from the document.
func Import(m *Model, rng *rand.Rand) (*nn.Sequential, *core.Config, error) {
	if m == nil {
		return nil, nil, fmt.Errorf("onnxlite: import needs a model")
	}
	if m.Version != FormatVersion {
		return nil, nil, fmt.Errorf("onnxlite: unsupported version %d (want %d)", m.Version, FormatVersion)
	}
	if rng == nil {
		return nil, nil, fmt.Errorf("onnxlite: import needs an rng")
	}
	if len(m.Layers) == 0 {
		return nil, nil, fmt.Errorf("onnxlite: model has no layers")
	}
	layers := make([]nn.Layer, 0, len(m.Layers))
	for i, d := range m.Layers {
		switch d.Type {
		case "conv2d":
			c, err := nn.NewConv2D(d.Name, d.InChannels, d.Filters, d.Kernel, d.Stride, d.Pad, rng)
			if err != nil {
				return nil, nil, fmt.Errorf("onnxlite: layer %d: %w", i, err)
			}
			if err := loadInto(d, "weight", c.Weight()); err != nil {
				return nil, nil, fmt.Errorf("onnxlite: layer %d: %w", i, err)
			}
			if err := loadInto(d, "bias", c.Bias()); err != nil {
				return nil, nil, fmt.Errorf("onnxlite: layer %d: %w", i, err)
			}
			layers = append(layers, c)
		case "dense":
			dn, err := nn.NewDense(d.Name, d.In, d.Out, rng)
			if err != nil {
				return nil, nil, fmt.Errorf("onnxlite: layer %d: %w", i, err)
			}
			if err := loadInto(d, "weight", dn.Weight()); err != nil {
				return nil, nil, fmt.Errorf("onnxlite: layer %d: %w", i, err)
			}
			if err := loadInto(d, "bias", dn.Bias()); err != nil {
				return nil, nil, fmt.Errorf("onnxlite: layer %d: %w", i, err)
			}
			layers = append(layers, dn)
		case "relu":
			layers = append(layers, nn.NewReLU(d.Name))
		case "flatten":
			layers = append(layers, nn.NewFlatten(d.Name))
		case "maxpool":
			p, err := nn.NewMaxPool2D(d.Name, d.Kernel, d.Stride)
			if err != nil {
				return nil, nil, fmt.Errorf("onnxlite: layer %d: %w", i, err)
			}
			layers = append(layers, p)
		case "dropout":
			dr, err := nn.NewDropout(d.Name, d.Rate, rng)
			if err != nil {
				return nil, nil, fmt.Errorf("onnxlite: layer %d: %w", i, err)
			}
			layers = append(layers, dr)
		case "lrn":
			l, err := nn.NewLRN(d.Name, d.Window, d.K, d.Alpha, d.Beta)
			if err != nil {
				return nil, nil, fmt.Errorf("onnxlite: layer %d: %w", i, err)
			}
			layers = append(layers, l)
		default:
			return nil, nil, fmt.Errorf("onnxlite: layer %d has unknown type %q", i, d.Type)
		}
	}
	net, err := nn.NewSequential(m.Name, layers...)
	if err != nil {
		return nil, nil, err
	}
	if m.Reliability == nil {
		return net, nil, nil
	}
	r := m.Reliability
	cfg := &core.Config{
		BucketFactor:     r.BucketFactor,
		BucketCeiling:    r.BucketCeiling,
		SobelKernel:      r.SobelKernel,
		DownsampleFactor: r.DownsampleFactor,
	}
	var ok bool
	if cfg.Wiring, ok = wiringByName[r.Wiring]; !ok {
		return nil, nil, fmt.Errorf("onnxlite: unknown wiring %q", r.Wiring)
	}
	if cfg.Mode, ok = modeByName[r.Mode]; !ok {
		return nil, nil, fmt.Errorf("onnxlite: unknown mode %q", r.Mode)
	}
	if len(r.SobelPair) == 2 {
		cfg.Pair = core.SobelPair{XIdx: r.SobelPair[0], YIdx: r.SobelPair[1]}
	} else if len(r.SobelPair) != 0 {
		return nil, nil, fmt.Errorf("onnxlite: sobel pair must have 2 entries, got %d", len(r.SobelPair))
	}
	if len(r.SafetyClasses) > 0 {
		cfg.SafetyClasses = make(map[int]shape.Class, len(r.SafetyClasses))
		for classStr, shapeName := range r.SafetyClasses {
			var class int
			if _, err := fmt.Sscanf(classStr, "%d", &class); err != nil {
				return nil, nil, fmt.Errorf("onnxlite: safety class key %q: %w", classStr, err)
			}
			sh, ok := shapeByName[shapeName]
			if !ok {
				return nil, nil, fmt.Errorf("onnxlite: unknown shape %q", shapeName)
			}
			cfg.SafetyClasses[class] = sh
		}
	}
	return net, cfg, nil
}

func loadInto(d LayerDesc, key string, dst *tensor.Tensor) error {
	enc, ok := d.Weights[key]
	if !ok {
		return fmt.Errorf("missing %q weights", key)
	}
	t, err := decodeTensor(enc)
	if err != nil {
		return err
	}
	return dst.CopyFrom(t)
}

// Write serialises the model as indented JSON.
func Write(m *Model, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("onnxlite: encode: %w", err)
	}
	return nil
}

// ReadModel parses a model document.
func ReadModel(r io.Reader) (*Model, error) {
	var m Model
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("onnxlite: decode: %w", err)
	}
	return &m, nil
}
