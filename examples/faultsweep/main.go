// Faultsweep measures how the reliable convolution behaves as the SEU rate
// rises, for every redundancy mode: the silent-data-corruption rate, the
// corrected-fault rate and the detected-unrecoverable rate, plus the
// analytic guarantee for comparison. It is the executable version of the
// paper's Section II argument.
//
// Run: go run ./examples/faultsweep
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/reliable"
	"repro/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Small convolution workload (same structure as the DCNN stage).
	rng := rand.New(rand.NewSource(5))
	in := tensor.MustNew(3, 10, 10)
	in.FillUniform(rng, 0, 1)
	filters := tensor.MustNew(2, 3, 3, 3)
	filters.FillUniform(rng, -0.5, 0.5)
	spec := reliable.ConvSpec{Stride: 1}
	oracle, err := reliable.NativeConv2D(in, filters, nil, spec)
	if err != nil {
		return err
	}
	macs, err := reliable.MACCount(in, filters, spec)
	if err != nil {
		return err
	}
	const trials = 25

	fmt.Printf("workload: %d MACs per inference, %d trials per cell\n\n", macs, trials)
	fmt.Println("mode          rate      masked corrected detected  SDC   coverage   analytic P[SDC]")
	fmt.Println("----          ----      ------ --------- --------  ---   --------   ---------------")

	seed := int64(100)
	for _, mode := range []core.RedundancyMode{
		core.ModePlain, core.ModeTemporalDMR, core.ModeTMR,
	} {
		for _, rate := range []float64{1e-5, 1e-4, 1e-3} {
			var tally fault.Tally
			for i := 0; i < trials; i++ {
				seed++
				factory := func() fault.ALU {
					seed++
					alu, err := fault.NewTransient(rate, fault.BitFlip{Bit: -1},
						rand.New(rand.NewSource(seed)))
					if err != nil {
						panic(err) // unreachable: validated parameters
					}
					return alu
				}
				ops, err := mode.NewOps(factory)
				if err != nil {
					return err
				}
				engine, err := reliable.NewEngine(ops, nil)
				if err != nil {
					return err
				}
				out, err := reliable.Conv2D(engine, in, filters, nil, spec)
				if err != nil {
					if errors.Is(err, reliable.ErrBucketTripped) {
						tally.Add(fault.OutcomeDetected)
						continue
					}
					return err
				}
				tally.Add(fault.Classify(out.Equal(oracle), engine.Stats().Retries > 0))
			}
			g, err := core.ComputeGuarantee(core.GuaranteeParams{
				PerOpFaultProb: rate, CollisionProb: 1.0 / 32, Mode: mode,
				BucketFactor: reliable.DefaultFactor, BucketCeiling: reliable.DefaultCeiling,
				OpsPerInference: 2 * macs,
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-13s %-9.0e %5d %8d %9d %5d   %8.3f   %.3e\n",
				mode, rate, tally.Masked, tally.Corrected, tally.Detected,
				tally.SDC, tally.Coverage(), g.PUndetectedPerInference)
		}
	}
	fmt.Println()
	fmt.Println("reading: plain execution converts faults straight into SDC; temporal DMR")
	fmt.Println("detects and retries them (corrected) and aborts under bursts (detected);")
	fmt.Println("TMR masks single faults without even a retry. The analytic column is the")
	fmt.Println("per-inference silent-corruption bound from the reliability guarantee.")
	return nil
}
