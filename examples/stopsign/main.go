// Stopsign demonstrates the paper's running example at full fidelity: the
// Figure 1 (parallel) wiring with full-resolution qualification and a
// downsampled CNN path, evaluated over a batch of rendered signs — including
// deliberately confusing ones — with a summary of how the qualifier guards
// the safety-critical "stop" classification.
//
// Run: go run ./examples/stopsign
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/shape"
	"repro/internal/train"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))

	// Train the CNN at 32×32.
	ds, err := gtsrb.Generate(gtsrb.Config{Size: 32, PerClass: 18}, rng)
	if err != nil {
		return err
	}
	net, err := nn.NewMicroAlexNet(nn.DefaultMicroConfig(), rng)
	if err != nil {
		return err
	}
	opt, err := train.NewSGD(0.03, 0.9, 1e-4)
	if err != nil {
		return err
	}
	tr := &train.Trainer{Net: net, Opt: opt, Epochs: 8, BatchSize: 8, Rng: rng}
	if _, err := tr.Fit(ds); err != nil {
		return err
	}
	acc, err := train.Accuracy(net, ds)
	if err != nil {
		return err
	}
	fmt.Printf("CNN training accuracy: %.3f\n\n", acc)

	// Figure 1 wiring: the qualifier consumes a reliably executed Sobel
	// stage on the 96×96 input ("shape recognition requires an appreciable
	// image size"); the CNN sees the 32×32 downsampled view.
	hybrid, err := core.NewHybridNetwork(core.Config{
		Wiring:           core.WiringParallel,
		Mode:             core.ModeTemporalDMR,
		DownsampleFactor: 3,
		SafetyClasses:    map[int]shape.Class{gtsrb.StopClass: shape.ClassOctagon},
	}, net)
	if err != nil {
		return err
	}

	classes := gtsrb.StandardClasses()
	fmt.Println("sign         CNN says      conf   qualifier  decision")
	fmt.Println("----         --------      ----   ---------  --------")
	counts := map[core.Decision]int{}
	for trial := 0; trial < 12; trial++ {
		spec := classes[trial%len(classes)]
		cfg, err := gtsrb.Config{Size: 96}.Normalize()
		if err != nil {
			return err
		}
		img, err := gtsrb.Render(gtsrb.RandomParams(cfg, spec, rng), rng)
		if err != nil {
			return err
		}
		res, err := hybrid.Classify(img)
		if err != nil {
			return err
		}
		counts[res.Decision]++
		fmt.Printf("%-12s %-12s %5.2f   %-10v %v\n",
			spec.Name, classes[res.Class].Name, res.Confidence,
			res.Qualifier.Class, res.Decision)
	}
	fmt.Println()
	fmt.Printf("decisions: %d qualified, %d rejected, %d not-safety-relevant, %d failed\n",
		counts[core.DecisionQualified], counts[core.DecisionRejected],
		counts[core.DecisionNotSafetyRelevant], counts[core.DecisionExecutionFailed])

	// The adversarial case the paper motivates: a red OCTAGON is the only
	// thing that may be acted upon as a stop sign. Render a red *circle*
	// (prohibition-like) and see that even if the CNN were to call it a
	// stop, the qualifier would refuse.
	p := gtsrb.SignParams{
		Shape: gtsrb.ShapeCircle, Fill: classes[gtsrb.StopClass].Fill,
		Size: 96, CenterX: 48, CenterY: 48, Radius: 36,
		Background: 0.1, NoiseSigma: 0.01, Brightness: 1,
	}
	img, err := gtsrb.Render(p, rng)
	if err != nil {
		return err
	}
	res, err := hybrid.Classify(img)
	if err != nil {
		return err
	}
	fmt.Printf("\nred circle probe: CNN=%s qualifier=%v decision=%v\n",
		classes[res.Class].Name, res.Qualifier.Class, res.Decision)
	if res.Class == gtsrb.StopClass && res.Decision == core.DecisionQualified {
		return fmt.Errorf("BUG: a non-octagon was qualified as a stop sign")
	}
	fmt.Println("the qualifier correctly refuses to qualify a non-octagonal \"stop\"")
	return nil
}
