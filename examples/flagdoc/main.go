// Command flagdoc keeps the flag tables in docs/OPERATIONS.md in lockstep
// with the serving binaries' actual -h output, so the operator's manual
// cannot silently drift from the code. It runs each binary with -h (via
// go run, from the repo root), parses the standard flag-package usage
// listing into a markdown table, and splices it between that binary's
// marker comments:
//
//	<!-- BEGIN flagdoc:hybridnetd -->
//	...generated table...
//	<!-- END flagdoc:hybridnetd -->
//
// Default mode checks and exits 1 on drift (the CI docs job); -write
// regenerates the tables in place:
//
//	go run ./examples/flagdoc            # check (CI)
//	go run ./examples/flagdoc -write     # update docs/OPERATIONS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strings"
)

// targets are the binaries (or subcommands — args run before -h) whose
// flags the manual documents.
var targets = []struct {
	name, pkg string
	args      []string
}{
	{name: "hybridnetd", pkg: "repro/cmd/hybridnetd"},
	{name: "hybridnet-router", pkg: "repro/cmd/hybridnet-router"},
	{name: "hybridnet-sim", pkg: "repro/cmd/hybridnet-sim"},
	{name: "hybridnet-train", pkg: "repro/cmd/hybridnet", args: []string{"train"}},
}

func main() {
	doc := flag.String("doc", "docs/OPERATIONS.md", "manual to check or update (relative to the repo root)")
	write := flag.Bool("write", false, "rewrite the flag tables instead of checking them")
	flag.Parse()
	if err := run(*doc, *write); err != nil {
		fmt.Fprintln(os.Stderr, "flagdoc:", err)
		os.Exit(1)
	}
}

func run(docPath string, write bool) error {
	content, err := os.ReadFile(docPath)
	if err != nil {
		return fmt.Errorf("read %s (run from the repo root): %w", docPath, err)
	}
	updated := string(content)
	for _, t := range targets {
		usage, err := helpOutput(t.pkg, t.args)
		if err != nil {
			return fmt.Errorf("%s: %w", t.name, err)
		}
		table := renderTable(parseUsage(usage))
		updated, err = splice(updated, t.name, table)
		if err != nil {
			return fmt.Errorf("%s: %w", t.name, err)
		}
	}
	if updated == string(content) {
		fmt.Printf("flagdoc: %s flag tables are in sync\n", docPath)
		return nil
	}
	if write {
		if err := os.WriteFile(docPath, []byte(updated), 0o644); err != nil {
			return err
		}
		fmt.Printf("flagdoc: rewrote flag tables in %s\n", docPath)
		return nil
	}
	return fmt.Errorf("%s flag tables drifted from -h output; run `go run ./examples/flagdoc -write`", docPath)
}

// helpOutput captures a binary's flag usage listing, optionally through a
// subcommand (e.g. `hybridnet train -h`). The flag package prints it to
// stderr; every documented target exits 0 on -h.
func helpOutput(pkg string, args []string) (string, error) {
	argv := append(append([]string{"run", pkg}, args...), "-h")
	cmd := exec.Command("go", argv...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go run %s %s -h: %v\n%s", pkg, strings.Join(args, " "), err, out)
	}
	return string(out), nil
}

// flagRow is one parsed flag from the usage listing.
type flagRow struct {
	name, typ, def, desc string
}

var (
	flagLine = regexp.MustCompile(`^  -(\S+)(?: (\S+))?$`)
	defaultR = regexp.MustCompile(`\s*\(default (.*)\)$`)
)

// parseUsage walks the standard flag-package listing: a two-space-indented
// "-name type" line followed by tab-indented description lines, with the
// default folded into the description tail.
func parseUsage(usage string) []flagRow {
	var rows []flagRow
	for _, line := range strings.Split(usage, "\n") {
		if m := flagLine.FindStringSubmatch(line); m != nil {
			typ := m[2]
			if typ == "" {
				typ = "bool" // boolean flags print no type token
			}
			rows = append(rows, flagRow{name: m[1], typ: typ})
			continue
		}
		if len(rows) == 0 {
			continue
		}
		trimmed := strings.TrimLeft(line, " \t")
		if trimmed == "" || trimmed == line { // not an indented description line
			continue
		}
		r := &rows[len(rows)-1]
		if m := defaultR.FindStringSubmatch(trimmed); m != nil {
			r.def = strings.Trim(m[1], `"`)
			trimmed = defaultR.ReplaceAllString(trimmed, "")
		}
		if r.desc != "" {
			r.desc += " "
		}
		r.desc += trimmed
	}
	return rows
}

func renderTable(rows []flagRow) string {
	var b strings.Builder
	b.WriteString("| Flag | Type | Default | Description |\n")
	b.WriteString("|------|------|---------|-------------|\n")
	for _, r := range rows {
		def := r.def
		if def == "" {
			def = "—"
		} else {
			def = "`" + def + "`"
		}
		fmt.Fprintf(&b, "| `-%s` | %s | %s | %s |\n",
			r.name, r.typ, def, strings.ReplaceAll(r.desc, "|", "\\|"))
	}
	return b.String()
}

// splice replaces the table between a target's BEGIN/END markers.
func splice(doc, name, table string) (string, error) {
	begin := fmt.Sprintf("<!-- BEGIN flagdoc:%s -->", name)
	end := fmt.Sprintf("<!-- END flagdoc:%s -->", name)
	i := strings.Index(doc, begin)
	j := strings.Index(doc, end)
	if i < 0 || j < 0 || j < i {
		return "", fmt.Errorf("markers %q/%q not found in order", begin, end)
	}
	return doc[:i+len(begin)] + "\n" + table + doc[j:], nil
}
