// Quickstart: build the smallest useful hybrid CNN in ~60 lines.
//
//   - generate a synthetic traffic-sign dataset,
//   - train a micro-AlexNet with a Sobel pair pre-initialised in conv1,
//   - wrap it into a hybrid network (Figure 2 wiring: conv1 executes
//     reliably, its output feeds both the CNN and the shape qualifier),
//   - classify a stop sign and print the qualified decision.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/shape"
	"repro/internal/train"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(42))

	// 1. Data: six sign classes; the red octagon (class 0) is the
	//    safety-critical one.
	ds, err := gtsrb.Generate(gtsrb.Config{Size: 32, PerClass: 18}, rng)
	if err != nil {
		return err
	}

	// 2. Model: micro-AlexNet with the Sobel pair installed and pinned.
	net, err := nn.NewMicroAlexNet(nn.DefaultMicroConfig(), rng)
	if err != nil {
		return err
	}
	conv1, err := nn.FirstConv(net)
	if err != nil {
		return err
	}
	pair, err := core.InstallSobelPair(conv1, 0, 1)
	if err != nil {
		return err
	}
	freeze, err := train.NewFilterFreeze(conv1, train.FreezeHard, pair.XIdx, pair.YIdx)
	if err != nil {
		return err
	}
	opt, err := train.NewSGD(0.03, 0.9, 1e-4)
	if err != nil {
		return err
	}
	tr := &train.Trainer{Net: net, Opt: opt, Epochs: 10, BatchSize: 8,
		Freezes: []*train.FilterFreeze{freeze}, Rng: rng}
	if _, err := tr.Fit(ds); err != nil {
		return err
	}

	// 3. Hybrid wrap: reliable conv1 (temporal DMR + leaky bucket), SAX
	//    qualifier on the Sobel channels, octagon required for "stop".
	hybrid, err := core.NewHybridNetwork(core.Config{
		Wiring:        core.WiringBifurcated,
		Mode:          core.ModeTemporalDMR,
		Pair:          pair,
		SafetyClasses: map[int]shape.Class{gtsrb.StopClass: shape.ClassOctagon},
	}, net)
	if err != nil {
		return err
	}

	// 4. Classify a slightly angled stop sign. (At the micro network's
	//    32×32 input the qualifier reads a 28×28 edge map, so the angle is
	//    kept mild; examples/stopsign shows full-resolution qualification.)
	stop := gtsrb.StandardClasses()[gtsrb.StopClass]
	img, err := gtsrb.Render(gtsrb.SignParams{
		Shape: stop.Shape, Fill: stop.Fill, Size: 32,
		CenterX: 16, CenterY: 16, Radius: 13,
		Rotation: 0.10, Tilt: 0.12,
		Background: 0.1, NoiseSigma: 0.01, Brightness: 1,
	}, rng)
	if err != nil {
		return err
	}
	res, err := hybrid.Classify(img)
	if err != nil {
		return err
	}
	classes := gtsrb.StandardClasses()
	fmt.Printf("CNN:       %s (%.1f%% confidence)\n", classes[res.Class].Name, 100*res.Confidence)
	fmt.Printf("qualifier: %v (%d corners, SAX %q)\n", res.Qualifier.Class, res.Qualifier.Peaks, res.Qualifier.Word.String())
	fmt.Printf("decision:  %v\n", res.Decision)
	fmt.Printf("reliable executions: %d ops, %d retries, bucket peak %d\n",
		res.Stats.Ops, res.Stats.Retries, res.Bucket.Peak)
	return nil
}
