// Command loadgen drives a running hybridnetd (or hybridnet-router) at a
// configured request rate and reports tail latency — the measurement half
// of the serving subsystem. It is an open-loop generator: requests fire on
// a fixed schedule whether or not earlier ones have completed, so queueing
// delay shows up in the latency distribution instead of silently
// throttling the offered load.
//
//	go run ./cmd/hybridnetd -demo &
//	go run ./examples/loadgen -addr http://127.0.0.1:8080 -rps 200 -duration 10s
//
// Against the sharded plane, -router additionally pulls the router's
// /stats after the run and prints each shard's served count and latency
// tail next to the serve.Merge aggregate, so per-shard imbalance (and the
// cost of a mid-run failover) is visible instead of averaged away:
//
//	go run ./cmd/hybridnet-router -shards 2 -worker-bin ./hybridnetd &
//	go run ./examples/loadgen -addr http://127.0.0.1:8090 -router -rps 200
//
// Rejections (HTTP 503, the daemon's admission control) are counted
// separately from successes: under overload the right outcome is a fast
// 503, not an ever-growing queue.
//
// -class-mix drives a mixed service-class workload (the fractions need not
// sum to 1; they are normalised) and reports client-side p50/p99 per class
// plus how many responses came back degraded:
//
//	go run ./examples/loadgen -addr http://127.0.0.1:8090 -rps 400 \
//	    -class-mix 'guaranteed=0.2,fast=0.5,budget=0.3'
//
// -scenario replays a fleet-simulator arrival schedule (a builtin name
// from internal/sim, or a scenario JSON file) against the real fleet: the
// same seeded Poisson arrival process the simulator ran, including phase
// changes like the overload-burst spike, so simulated and measured tails
// line up arrival-for-arrival. It overrides -rps and -duration:
//
//	go run ./examples/loadgen -addr http://127.0.0.1:8090 -router -scenario overload-burst
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/sim"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "hybridnetd or hybridnet-router base URL")
	rps := flag.Float64("rps", 100, "offered request rate per second")
	duration := flag.Duration("duration", 5*time.Second, "how long to drive load")
	sign := flag.String("sign", "stop", "sign class to request")
	concurrency := flag.Int("concurrency", 256, "max in-flight requests before shedding")
	timeout := flag.Duration("timeout", 10*time.Second, "client request timeout")
	router := flag.Bool("router", false, "target is hybridnet-router: report per-shard vs aggregate stats after the run")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests to trace: parse X-Hybridnet-Spans and report the server-side per-stage breakdown (0 = off)")
	classMix := flag.String("class-mix", "", "per-class traffic fractions, e.g. guaranteed=0.2,fast=0.5,budget=0.3 (empty = no class header, the server default applies); enables per-class latency reporting")
	scenario := flag.String("scenario", "", "replay a fleet-simulator arrival schedule (builtin name or scenario JSON file) instead of -rps/-duration")
	flag.Parse()
	var sc *sim.Scenario
	if *scenario != "" {
		loaded, err := sim.Builtin(*scenario)
		if err != nil {
			// Not a builtin: treat it as a scenario file.
			loaded, err = sim.LoadScenario(*scenario)
			if err != nil {
				fmt.Fprintln(os.Stderr, "loadgen:", err)
				os.Exit(1)
			}
		}
		sc = &loaded
	}
	if err := run(*addr, *rps, *duration, *sign, *concurrency, *timeout, *router, *traceSample, *classMix, sc); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// scenarioOffsets precomputes the replayed arrival times: the exact
// arrival process the simulator ran — exponential spacing at the phase
// rate, redrawn at phase boundaries, from the scenario's seeded stream
// (seed+1, the simulator's arrival stream) — as offsets from the start of
// the run.
func scenarioOffsets(sc sim.Scenario) []time.Duration {
	rng := rand.New(rand.NewSource(sc.Seed + 1))
	var offs []time.Duration
	t := time.Duration(0)
	for t < sc.Duration {
		rps, phaseEnd := sc.RPSAt(t)
		if rps <= 0 {
			t = phaseEnd
			continue
		}
		gap := time.Duration(rng.ExpFloat64() / rps * float64(time.Second))
		next := t + gap
		if next >= sc.Duration {
			break
		}
		if next > phaseEnd {
			t = phaseEnd
			continue
		}
		offs = append(offs, next)
		t = next
	}
	return offs
}

// classPicker deterministically assigns a service class per request from the
// -class-mix fractions. nil means the flag is off: no header is sent and
// the server-side default class applies.
type classPicker struct {
	cum [serve.NumClasses]float64 // cumulative fractions, cum[last] == total
	rng *rand.Rand
}

func newClassPicker(spec string) (*classPicker, error) {
	if spec == "" {
		return nil, nil
	}
	mix, err := serve.ParseClassFloats(spec)
	if err != nil {
		return nil, err
	}
	p := &classPicker{rng: rand.New(rand.NewSource(1))}
	total := 0.0
	for i, f := range mix {
		if f < 0 {
			return nil, fmt.Errorf("-class-mix: negative fraction for %v", serve.Class(i))
		}
		total += f
		p.cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("-class-mix: fractions sum to zero")
	}
	return p, nil
}

// pick is called from the single scheduling goroutine only.
func (p *classPicker) pick() serve.Class {
	r := p.rng.Float64() * p.cum[serve.NumClasses-1]
	for i, c := range p.cum {
		if r < c {
			return serve.Class(i)
		}
	}
	return serve.Class(serve.NumClasses - 1)
}

// tally accumulates client-side observations. Latencies go straight into a
// serve.Histogram — the same mergeable log-bucketed structure the servers
// report — so the client-side quantiles are directly comparable to the
// /stats ones (both exact-to-bucket) and the memory cost is flat no matter
// how long the run is. Sampled traces land their per-stage spans in stages,
// one histogram per span name (router spans under a "router/" prefix).
type tally struct {
	mu        sync.Mutex
	latencies *serve.Histogram
	status    map[int]int
	errors    int
	shed      int
	stages    map[string]*serve.Histogram
	traced    int

	// Per-class views, populated only when -class-mix is set: latency
	// histogram and status counts per requested class, plus how many
	// responses came back with "degraded":true (budget requests the server
	// re-admitted into the fast pipeline instead of shedding).
	byClass  bool
	classLat [serve.NumClasses]*serve.Histogram
	classSt  [serve.NumClasses]map[int]int
	degraded [serve.NumClasses]int
}

// observeSpans folds one traced response's span headers into the per-stage
// histograms. Caller holds t.mu.
func (t *tally) observeSpans(hdr http.Header) {
	worker, err := obs.ParseSpans(hdr.Get(obs.SpansHeader))
	if err != nil {
		return
	}
	routerSpans, err := obs.ParseSpans(hdr.Get(obs.RouterSpansHeader))
	if err != nil {
		return
	}
	if len(worker) == 0 && len(routerSpans) == 0 {
		return
	}
	t.traced++
	for _, s := range worker {
		h := t.stages[s.Name]
		if h == nil {
			h = serve.NewHistogram()
			t.stages[s.Name] = h
		}
		h.Observe(s.Dur)
	}
	for _, s := range routerSpans {
		name := "router/" + s.Name
		h := t.stages[name]
		if h == nil {
			h = serve.NewHistogram()
			t.stages[name] = h
		}
		h.Observe(s.Dur)
	}
}

func run(addr string, rps float64, duration time.Duration, sign string, concurrency int, timeout time.Duration, router bool, traceSample float64, classMix string, sc *sim.Scenario) error {
	if sc == nil && rps <= 0 {
		return fmt.Errorf("rps must be > 0")
	}
	if sc != nil {
		// The scenario scripts the schedule; -rps/-duration don't apply.
		duration = sc.Duration
	}
	picker, err := newClassPicker(classMix)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: timeout}
	// Fail fast if the daemon is not there at all.
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon not reachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	t := &tally{latencies: serve.NewHistogram(), status: map[int]int{},
		stages: map[string]*serve.Histogram{}}
	if picker != nil {
		t.byClass = true
		for i := range t.classLat {
			t.classLat[i] = serve.NewHistogram()
			t.classSt[i] = map[int]int{}
		}
	}
	sampleEvery := 0
	if traceSample > 0 {
		if traceSample > 1 {
			traceSample = 1
		}
		sampleEvery = int(1 / traceSample)
		if sampleEvery < 1 {
			sampleEvery = 1
		}
	}
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	seq := 0
	// fire launches one request (or sheds it at the concurrency cap); it is
	// called from the single scheduling goroutine, on whichever schedule —
	// the fixed -rps ticker or the replayed scenario offsets — is driving.
	fire := func() {
		seq++
		select {
		case sem <- struct{}{}:
		default:
			// Open loop: past the concurrency cap we shed instead of
			// blocking the schedule.
			t.mu.Lock()
			t.shed++
			t.mu.Unlock()
			return
		}
		class := serve.ClassGuaranteed
		if picker != nil {
			// Picked on the scheduling goroutine: the picker's rng is not
			// concurrency-safe, and a deterministic seed keeps the mix
			// reproducible run to run.
			class = picker.pick()
		}
		wg.Add(1)
		go func(seq int, class serve.Class) {
			defer wg.Done()
			defer func() { <-sem }()
			body := fmt.Sprintf(`{"sign":%q,"seed":%d}`, sign, seq)
			start := time.Now()
			req, err := http.NewRequest(http.MethodPost, addr+"/classify", bytes.NewReader([]byte(body)))
			if err != nil {
				t.mu.Lock()
				t.errors++
				t.mu.Unlock()
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if picker != nil {
				req.Header.Set(obs.ClassHeader, class.String())
			}
			resp, err := client.Do(req)
			if err != nil {
				t.mu.Lock()
				t.errors++
				t.mu.Unlock()
				return
			}
			// Read outside the lock: body reads must not serialize the
			// open-loop completions the tool is measuring. The body is only
			// inspected (for the degraded marker) when classes are in play.
			var wasDegraded bool
			if t.byClass {
				respBody, _ := io.ReadAll(resp.Body)
				wasDegraded = bytes.Contains(respBody, []byte(`"degraded":true`))
			} else {
				io.Copy(io.Discard, resp.Body)
			}
			resp.Body.Close()
			lat := time.Since(start)
			t.mu.Lock()
			t.status[resp.StatusCode]++
			if t.byClass {
				t.classSt[class][resp.StatusCode]++
				if wasDegraded {
					t.degraded[class]++
				}
			}
			if resp.StatusCode == http.StatusOK {
				t.latencies.Observe(lat)
				if t.byClass {
					t.classLat[class].Observe(lat)
				}
				if sampleEvery > 0 && seq%sampleEvery == 0 {
					t.observeSpans(resp.Header)
				}
			}
			t.mu.Unlock()
		}(seq, class)
	}

	if sc != nil {
		// Replay the simulator's arrival process in real time: sleep to
		// each precomputed offset, then fire. Offsets are absolute from the
		// run start so schedule drift does not accumulate.
		start := time.Now()
		for _, off := range scenarioOffsets(*sc) {
			if d := time.Until(start.Add(off)); d > 0 {
				time.Sleep(d)
			}
			fire()
		}
	} else {
		interval := time.Duration(float64(time.Second) / rps)
		deadline := time.Now().Add(duration)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for now := time.Now(); now.Before(deadline); now = <-ticker.C {
			fire()
		}
	}
	wg.Wait()

	t.mu.Lock()
	defer t.mu.Unlock()
	sent := seq - t.shed
	if sc != nil {
		fmt.Printf("scenario %s: offered %d requests over %v; sent %d (%.1f rps mean)\n",
			sc.Name, seq, duration, sent, float64(sent)/duration.Seconds())
	} else {
		fmt.Printf("offered %d requests over %v (target %.0f rps); sent %d (%.1f rps)\n",
			seq, duration, rps, sent, float64(sent)/duration.Seconds())
	}
	for code, n := range t.status {
		fmt.Printf("  HTTP %d: %d\n", code, n)
	}
	if t.errors > 0 {
		fmt.Printf("  transport errors: %d\n", t.errors)
	}
	if t.shed > 0 {
		fmt.Printf("  shed at client (concurrency %d): %d\n", concurrency, t.shed)
	}
	n := t.latencies.Count()
	if n == 0 {
		return fmt.Errorf("no successful requests")
	}
	q := t.latencies.Quantile
	fmt.Printf("latency (n=%d, bucketed): p50 %v  p90 %v  p99 %v  max %v\n",
		n, q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), t.latencies.Max().Round(time.Microsecond))
	fmt.Printf("success throughput: %.1f rps\n", float64(n)/duration.Seconds())
	if t.byClass {
		fmt.Println("per-class (client view):")
		for _, c := range serve.Classes {
			h := t.classLat[c]
			ok := t.classSt[c][http.StatusOK]
			shed503 := t.classSt[c][http.StatusServiceUnavailable]
			sentC := 0
			for _, n := range t.classSt[c] {
				sentC += n
			}
			if sentC == 0 {
				continue
			}
			line := fmt.Sprintf("  %-10s sent %-6d 200s %-6d 503s %-5d", c, sentC, ok, shed503)
			if h.Count() > 0 {
				line += fmt.Sprintf("  p50 %v  p99 %v  max %v",
					h.Quantile(0.50).Round(time.Microsecond),
					h.Quantile(0.99).Round(time.Microsecond),
					h.Max().Round(time.Microsecond))
			}
			if t.degraded[c] > 0 {
				line += fmt.Sprintf("  degraded %d", t.degraded[c])
			}
			fmt.Println(line)
		}
	}
	if t.traced > 0 {
		// The server-side view of where sampled requests spent their time:
		// top-level stages tile the wall clock; dotted sub-spans (backend.cnn)
		// and router/ attempts are drill-down detail.
		fmt.Printf("server-side stage breakdown (%d traced):\n", t.traced)
		names := make([]string, 0, len(t.stages))
		for name := range t.stages {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := t.stages[name]
			fmt.Printf("  %-20s p50 %v  p99 %v  max %v\n", name,
				h.Quantile(0.50).Round(time.Microsecond),
				h.Quantile(0.99).Round(time.Microsecond),
				h.Max().Round(time.Microsecond))
		}
	}
	if router {
		return reportShards(client, addr)
	}
	return nil
}

// reportShards prints the router's view of the run: each shard's served
// volume and latency tail beside the merged aggregate, so imbalance and
// failover cost are visible per replica.
func reportShards(client *http.Client, addr string) error {
	resp, err := client.Get(addr + "/stats")
	if err != nil {
		return fmt.Errorf("router stats: %w", err)
	}
	defer resp.Body.Close()
	var rep shard.StatsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return fmt.Errorf("decode router stats: %w", err)
	}
	if len(rep.Shards) == 0 {
		// A plain hybridnetd's serve.Stats decodes into StatsReport without
		// error (unknown fields are ignored), so detect the mismatch
		// structurally: a real router always lists its shards.
		return fmt.Errorf("%s/stats has no shard list — is -addr really a hybridnet-router?", addr)
	}
	fmt.Printf("router: %d proxied, %d failovers, %d errors\n", rep.Proxied, rep.Failovers, rep.Errors)
	for _, s := range rep.Shards {
		state := "healthy"
		switch {
		case s.PermanentlyDown:
			state = "DOWN"
		case !s.Healthy:
			state = "BROKEN"
		}
		if s.Restarts > 0 {
			state = fmt.Sprintf("%s (respawned %d×)", state, s.Restarts)
		}
		if s.Stats == nil {
			fmt.Printf("  shard %d %-22s %s  stats unavailable: %s\n", s.ID, s.URL, state, s.Error)
			continue
		}
		fmt.Printf("  shard %d %-22s %s  w=%.1f svc=%v  completed %d (mean batch %.2f)  p50 %v  p99 %v  max %v\n",
			s.ID, s.URL, state, s.Weight, s.ServiceTime.Round(time.Microsecond),
			s.Stats.Completed, s.Stats.MeanBatch,
			s.Stats.LatencyP50.Round(time.Microsecond), s.Stats.LatencyP99.Round(time.Microsecond),
			s.Stats.LatencyMax.Round(time.Microsecond))
	}
	agg := rep.Aggregate
	exact := "count-weighted"
	if agg.LatencyHist != nil {
		exact = "merged-histogram exact"
	}
	fmt.Printf("  aggregate (%d shards, %s)  completed %d (mean batch %.2f)  p50 %v  p99 %v  max %v\n",
		agg.Shards, exact, agg.Completed, agg.MeanBatch,
		agg.LatencyP50.Round(time.Microsecond), agg.LatencyP99.Round(time.Microsecond),
		agg.LatencyMax.Round(time.Microsecond))
	return nil
}
