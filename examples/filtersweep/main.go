// Filtersweep reproduces Figure 4 interactively: it trains the micro
// AlexNet, replaces each first-layer filter in turn with the paper's
// Sobel-x/Sobel-y/Sobel-x filter, and prints the stop-class confidence and
// accuracy per replacement as a bar chart, with the baseline marked — the
// textual rendition of the paper's plot with its red dotted line.
//
// Run: go run ./examples/filtersweep
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("training the micro AlexNet and sweeping first-layer filter replacements …")
	res, err := experiments.RunFigure4(experiments.Figure4Config{Seed: 3})
	if err != nil {
		return err
	}
	fmt.Printf("\nbaseline: accuracy %.3f, stop confidence %.3f\n\n", res.BaselineAccuracy, res.BaselineStopConfidence)
	fmt.Println("filter   stop-confidence                                   accuracy")
	for _, row := range res.Rows {
		bar := strings.Repeat("█", int(row.StopConfidence*40))
		marker := " "
		if row.Accuracy < res.BaselineAccuracy-0.05 {
			marker = "↓" // replacement hurt this filter's contribution
		}
		fmt.Printf("  %2d     %-42s %.3f %s\n", row.Index, bar, row.Accuracy, marker)
	}
	lo, hi := res.Spread()
	fmt.Printf("\naccuracy spread across replacements: %.3f – %.3f (baseline %.3f)\n", lo, hi, res.BaselineAccuracy)
	fmt.Println("\nthe paper's observation: \"the accuracy varies substantially depending on")
	fmt.Println("which filter has been replaced\" — some filters are redundant with the Sobel")
	fmt.Println("edge content, others carry colour/texture information the replacement destroys.")
	return nil
}
