package repro_test

// Benchmark harness: one benchmark per table/figure of the paper, plus
// microbenchmarks for the substrates. See EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
//
// Run everything:   go test -bench=. -benchmem
// Paper-scale only: go test -bench=Full -benchmem   (tens of seconds)

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/gtsrb"
	"repro/internal/infer"
	"repro/internal/nn"
	"repro/internal/reliable"
	"repro/internal/serve"
	"repro/internal/shape"
	"repro/internal/shard"
	"repro/internal/tensor"
	"repro/internal/train"
)

// table1Workload builds the convolution operands for the Table 1 benches.
func table1Workload(b *testing.B, full bool) (*tensor.Tensor, *tensor.Tensor, reliable.ConvSpec) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	var in, filters *tensor.Tensor
	if full {
		in = tensor.MustNew(3, 227, 227)
		filters = tensor.MustNew(96, 3, 11, 11)
	} else {
		in = tensor.MustNew(3, 64, 64)
		filters = tensor.MustNew(16, 3, 11, 11)
	}
	in.FillUniform(rng, 0, 1)
	filters.FillUniform(rng, -0.1, 0.1)
	return in, filters, reliable.ConvSpec{Stride: 4}
}

func benchNative(b *testing.B, full bool) {
	in, filters, spec := table1Workload(b, full)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reliable.NativeConv2D(in, filters, nil, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func benchReliable(b *testing.B, full bool, mk func() (reliable.Ops, error)) {
	in, filters, spec := table1Workload(b, full)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops, err := mk()
		if err != nil {
			b.Fatal(err)
		}
		engine, err := reliable.NewEngine(ops, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reliable.Conv2D(engine, in, filters, nil, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 1 — scaled workload (16 × 11×11×3 over 64×64×3).

func BenchmarkTable1_Native_Scaled(b *testing.B) { benchNative(b, false) }

func BenchmarkTable1_Alg1Multiplication_Scaled(b *testing.B) {
	benchReliable(b, false, func() (reliable.Ops, error) { return reliable.NewPlain(fault.Soft{}) })
}

func BenchmarkTable1_Alg2RedundantMultiplication_Scaled(b *testing.B) {
	benchReliable(b, false, func() (reliable.Ops, error) { return reliable.NewTemporalDMR(fault.Soft{}) })
}

// Table 1 — the paper's exact first AlexNet convolution layer
// (96 × 11×11×3 over 227×227×3, stride 4 — 105,415,200 MACs).

func BenchmarkTable1_Native_Full(b *testing.B) { benchNative(b, true) }

func BenchmarkTable1_Alg1Multiplication_Full(b *testing.B) {
	benchReliable(b, true, func() (reliable.Ops, error) { return reliable.NewPlain(fault.Soft{}) })
}

func BenchmarkTable1_Alg2RedundantMultiplication_Full(b *testing.B) {
	benchReliable(b, true, func() (reliable.Ops, error) { return reliable.NewTemporalDMR(fault.Soft{}) })
}

// Figure 3 — the radial-series + SAX pipeline on an angled stop sign
// (also the paper's "naive SAX completes in 1.942 s" reference point).

func BenchmarkFigure3_RadialSAX(b *testing.B) {
	img, err := gtsrb.AngledStopSign(96, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	q, err := shape.NewQualifier(shape.DefaultQualifierConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := q.QualifyImage(img)
		if err != nil {
			b.Fatal(err)
		}
		if res.Class != shape.ClassOctagon {
			b.Fatalf("qualifier lost the octagon: %v", res.Class)
		}
	}
}

// Figure 4 — the filter-replacement sweep (training + N evaluations), at
// test scale.

func BenchmarkFigure4_FilterSweep(b *testing.B) {
	cfg := experiments.Figure4Config{
		Micro: nn.MicroConfig{
			InputSize: 16, Conv1Filters: 6, Conv1Kernel: 3,
			Conv2Filters: 8, Hidden: 16, Classes: 6, UseLRN: false,
		},
		PerClass: 12, Epochs: 4, LR: 0.03, Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation A — redundancy-mode coverage campaign.

func BenchmarkAblation_RedundancyCoverage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunRedundancyCoverage(experiments.CoverageConfig{
			Trials: 5, TransientRate: 5e-4, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation B — rollback-distance comparison.

func BenchmarkAblation_RollbackDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunRollbackAblation(experiments.RollbackConfig{
			Trials: 5, Rates: []float64{1e-4}, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Convolution kernels — naive reference loop vs the im2col/GEMM path the
// layer refactor introduced, on the paper's exact first AlexNet layer
// (96 × 11×11×3 over 227×227×3, stride 4).

func convBenchWorkload(b *testing.B) (*nn.Conv2D, *tensor.Tensor) {
	b.Helper()
	rng := rand.New(rand.NewSource(20))
	c, err := nn.NewConv2D("conv1", 3, nn.AlexNetConv1Filters, 11, 4, 0, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(3, nn.AlexNetInputSize, nn.AlexNetInputSize)
	x.FillUniform(rng, 0, 1)
	return c, x
}

func BenchmarkConvForward_Naive(b *testing.B) {
	c, x := convBenchWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ForwardNaive(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvForward_Im2col(b *testing.B) {
	c, x := convBenchWorkload(b)
	ctx := nn.NewContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Forward(ctx, x); err != nil {
			b.Fatal(err)
		}
	}
}

// Batch-native forward — ForwardBatch (one GEMM per layer per micro-batch)
// against the per-sample fan-out (N separate Forward calls through one
// context), swept over batch size. The batch effect is weight-traffic
// amortisation: a batched GEMM streams the layer's weights once for all N
// samples, so layers whose weights dwarf the cache (the deep convolutions,
// and above all the fully connected layers) speed up with batch size, while
// conv1 — tiny weights, huge activations — is roughly neutral. Recorded in
// BENCH_compute.json.

func benchForwardBatchLayer(b *testing.B, layer nn.Layer, c, size int) {
	rng := rand.New(rand.NewSource(30))
	for _, batch := range []int{1, 4, 8, 16, 32} {
		xs := make([]*tensor.Tensor, batch)
		for i := range xs {
			x := tensor.MustNew(c, size, size)
			x.FillUniform(rng, 0, 1)
			xs[i] = x
		}
		packed, err := tensor.Stack(xs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/mode=batched", batch), func(b *testing.B) {
			ctx := nn.NewContext()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := layer.ForwardBatch(ctx, packed); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "samples/s")
		})
		b.Run(fmt.Sprintf("n=%d/mode=persample", batch), func(b *testing.B) {
			ctx := nn.NewContext()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, x := range xs {
					if _, err := layer.Forward(ctx, x); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// AlexNet conv1: 96 11×11×3 filters over 227×227, stride 4 — huge spatial
// extent, weights fit in L2.
func BenchmarkForwardBatch_AlexNetConv1(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	conv, err := nn.NewConv2D("conv1", 3, nn.AlexNetConv1Filters, 11, 4, 0, rng)
	if err != nil {
		b.Fatal(err)
	}
	benchForwardBatchLayer(b, conv, 3, nn.AlexNetInputSize)
}

// AlexNet conv2: 256 5×5×96 filters over 27×27 — 2.4 MB of weights, the
// heaviest conv layer of the network.
func BenchmarkForwardBatch_AlexNetConv2(b *testing.B) {
	rng := rand.New(rand.NewSource(36))
	conv, err := nn.NewConv2D("conv2", 96, 256, 5, 1, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	benchForwardBatchLayer(b, conv, 96, 27)
}

// AlexNet conv3: 384 3×3×256 filters over 13×13 — 3.5 MB of weights against
// 169 output positions per sample, the weight-bound regime where batching
// pays.
func BenchmarkForwardBatch_AlexNetConv3(b *testing.B) {
	rng := rand.New(rand.NewSource(32))
	conv, err := nn.NewConv2D("conv3", 256, 384, 3, 1, 1, rng)
	if err != nil {
		b.Fatal(err)
	}
	benchForwardBatchLayer(b, conv, 256, 13)
}

// AlexNet fc6: 4096×9216 — 151 MB of weights, pure weight streaming; the
// batched path pays it once per batch instead of once per sample.
func BenchmarkForwardBatch_AlexNetFC6(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	fc, err := nn.NewDense("fc6", 256*6*6, 4096, rng)
	if err != nil {
		b.Fatal(err)
	}
	rngIn := rand.New(rand.NewSource(34))
	for _, batch := range []int{1, 4, 8, 16, 32} {
		xs := make([]*tensor.Tensor, batch)
		for i := range xs {
			x := tensor.MustNew(256 * 6 * 6)
			x.FillUniform(rngIn, 0, 1)
			xs[i] = x
		}
		packed, err := tensor.Stack(xs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/mode=batched", batch), func(b *testing.B) {
			ctx := nn.NewContext()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fc.ForwardBatch(ctx, packed); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "samples/s")
		})
		b.Run(fmt.Sprintf("n=%d/mode=persample", batch), func(b *testing.B) {
			ctx := nn.NewContext()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, x := range xs {
					if _, err := fc.Forward(ctx, x); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// Whole-network batched forward on the AlexNet-shaped micro net — the
// end-to-end compute effect MaxBatch now buys the serving tier.
func BenchmarkForwardBatch_MicroNet(b *testing.B) {
	rng := rand.New(rand.NewSource(35))
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 32, Conv1Filters: 16, Conv1Kernel: 5,
		Conv2Filters: 16, Hidden: 48, Classes: 6, UseLRN: true,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	benchForwardBatchLayer(b, net, 3, 32) // Sequential implements Layer
}

// Batch-native backward — one training step (forward + backward, since the
// backward pass consumes the forward's cached activations) through
// BackwardBatch against the per-sample Forward/Backward fan-out, swept over
// batch size. The batched path computes dW and dX with one GemmTB/GemmTA
// per layer over the whole batch, so the weight matrices stream once per
// batch in each direction instead of once per sample; the effect mirrors
// the forward benches but roughly doubled, because backward touches the
// weights twice (dW and dX). Recorded in BENCH_compute.json.

func benchBackwardBatchLayer(b *testing.B, layer nn.Layer, inShape, outShape []int) {
	rng := rand.New(rand.NewSource(40))
	for _, batch := range []int{1, 4, 8, 16} {
		xs := make([]*tensor.Tensor, batch)
		gs := make([]*tensor.Tensor, batch)
		for i := range xs {
			x := tensor.MustNew(inShape...)
			x.FillUniform(rng, 0, 1)
			xs[i] = x
			g := tensor.MustNew(outShape...)
			g.FillUniform(rng, -1, 1)
			gs[i] = g
		}
		packedX, err := tensor.Stack(xs)
		if err != nil {
			b.Fatal(err)
		}
		packedG, err := tensor.Stack(gs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/mode=batched", batch), func(b *testing.B) {
			ctx := nn.NewContext()
			ctx.SetTraining(true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := layer.ForwardBatch(ctx, packedX); err != nil {
					b.Fatal(err)
				}
				if _, err := layer.BackwardBatch(ctx, packedG); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "samples/s")
		})
		b.Run(fmt.Sprintf("n=%d/mode=persample", batch), func(b *testing.B) {
			ctx := nn.NewContext()
			ctx.SetTraining(true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, x := range xs {
					if _, err := layer.Forward(ctx, x); err != nil {
						b.Fatal(err)
					}
					if _, err := layer.Backward(ctx, gs[j]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// AlexNet conv3 backward: 384 3×3×256 filters over 13×13 — the weight-bound
// conv regime; backward streams the 3.5 MB of weights for both dW and dX.
func BenchmarkBackwardBatch_AlexNetConv3(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	conv, err := nn.NewConv2D("conv3", 256, 384, 3, 1, 1, rng)
	if err != nil {
		b.Fatal(err)
	}
	benchBackwardBatchLayer(b, conv, []int{256, 13, 13}, []int{384, 13, 13})
}

// AlexNet fc6 backward: 4096×9216 — 151 MB of weights, read twice per
// backward (dW accumulate + dX), the layer where batching pays most.
func BenchmarkBackwardBatch_AlexNetFC6(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	fc, err := nn.NewDense("fc6", 256*6*6, 4096, rng)
	if err != nil {
		b.Fatal(err)
	}
	benchBackwardBatchLayer(b, fc, []int{256 * 6 * 6}, []int{4096})
}

// End-to-end training throughput — Trainer.Fit over one epoch of synthetic
// GTSRB on an fc-heavy micro-AlexNet (small convs, 4096-wide hidden layer:
// the 9 MB fc1 weight matrix dominates, the regime where AlexNet spends
// its parameters), batched shards (SubBatch 0, the default) against the
// legacy per-sample path (SubBatch 1). Mini-batch 16, so the batched path
// runs whole 16-sample GEMM sweeps per layer per direction. Same seeds,
// same update rule; only the execution strategy differs.
func BenchmarkTrainerFit(b *testing.B) {
	cfg := nn.MicroConfig{
		InputSize: 32, Conv1Filters: 8, Conv1Kernel: 5,
		Conv2Filters: 16, Hidden: 4096, Classes: 6, UseLRN: false,
	}
	ds, err := gtsrb.Generate(gtsrb.Config{Size: 32, PerClass: 8},
		rand.New(rand.NewSource(51)))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name     string
		subBatch int
	}{{"batched", 0}, {"persample", 1}} {
		b.Run("mode="+mode.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				net, err := nn.NewMicroAlexNet(cfg, rand.New(rand.NewSource(50)))
				if err != nil {
					b.Fatal(err)
				}
				opt, err := train.NewSGD(0.03, 0.9, 1e-4)
				if err != nil {
					b.Fatal(err)
				}
				tr := &train.Trainer{
					Net: net, Opt: opt, BatchSize: 16, Epochs: 1,
					SubBatch: mode.subBatch, Rng: rand.New(rand.NewSource(52)),
				}
				b.StartTimer()
				if _, err := tr.Fit(ds); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ds.Len()*b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// Intra-GEMM parallelism — a single conv3- or fc6-shaped GEMM split across
// gemm workers (tensor.SetGemmWorkers, the -gemm-workers axis of the
// daemons). This is the latency lever: same work, fewer wall-clock
// milliseconds per layer, results bit-identical. Scaling requires real
// cores — at GOMAXPROCS=1 the splits serialize and the sweep should be
// flat, which is exactly why the flag defaults to off.
func BenchmarkGemmWorkers(b *testing.B) {
	defer tensor.SetGemmWorkers(1)
	rng := rand.New(rand.NewSource(37))
	shapes := []struct {
		name    string
		m, k, n int
	}{
		// conv3 batched at n=8: 384 filters × (256·3·3) over 8×13×13 positions.
		{"conv3_n8", 384, 2304, 1352},
		// fc6 batched at n=8: 8 samples × 9216 inputs × 4096 outputs.
		{"fc6_n8", 8, 9216, 4096},
	}
	for _, s := range shapes {
		a := make([]float32, s.m*s.k)
		bb := make([]float32, s.k*s.n)
		for i := range a {
			a[i] = rng.Float32()
		}
		for i := range bb {
			bb[i] = rng.Float32()
		}
		dst := make([]float32, s.m*s.n)
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("shape=%s/gemm-workers=%d", s.name, workers), func(b *testing.B) {
				tensor.SetGemmWorkers(workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tensor.Gemm(dst, a, bb, s.m, s.k, s.n)
				}
				flops := 2 * float64(s.m) * float64(s.k) * float64(s.n)
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
			})
		}
	}
}

// BatchEngine throughput — shared-weight inference over a worker pool, on
// an AlexNet-shaped micro network. One benchmark iteration classifies the
// whole batch; throughput in samples/op scales with workers until the GEMM
// memory bandwidth saturates.

func BenchmarkBatchEngine_Throughput(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 32, Conv1Filters: 16, Conv1Kernel: 5,
		Conv2Filters: 16, Hidden: 48, Classes: 6, UseLRN: true,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	xs := make([]*tensor.Tensor, batch)
	for i := range xs {
		x := tensor.MustNew(3, 32, 32)
		x.FillUniform(rng, 0, 1)
		xs[i] = x
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e, err := infer.New(net, infer.Config{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Predict(xs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// Scheduler throughput — the async serving path end to end: concurrent
// submitters → micro-batching scheduler → persistent BatchClassifier pool.
// The sweep crosses the flush threshold with the delay bound; samples/op
// shows the occupancy/latency trade (imgs/batch is the realised mean batch
// size). Zero delay only coalesces under concurrent load; 2ms trades that
// much queueing latency for fuller batches.

func BenchmarkScheduler_Throughput(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 32, Conv1Filters: 8, Conv1Kernel: 5,
		Conv2Filters: 8, Hidden: 16, Classes: 6, UseLRN: false,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	conv1, err := nn.FirstConv(net)
	if err != nil {
		b.Fatal(err)
	}
	pair, err := core.InstallSobelPair(conv1, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	h, err := core.NewHybridNetwork(core.Config{
		Wiring: core.WiringBifurcated, Mode: core.ModeTemporalDMR, Pair: pair,
		SafetyClasses: map[int]shape.Class{gtsrb.StopClass: shape.ClassOctagon},
	}, net)
	if err != nil {
		b.Fatal(err)
	}
	img, err := gtsrb.AngledStopSign(32, rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, maxBatch := range []int{1, 8, 32} {
		for _, delay := range []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond} {
			b.Run(fmt.Sprintf("batch=%d/delay=%s", maxBatch, delay), func(b *testing.B) {
				bc, err := h.NewBatchClassifier(0)
				if err != nil {
					b.Fatal(err)
				}
				s, err := serve.New(bc, serve.Config{
					MaxBatch: maxBatch, MaxDelay: delay, QueueSize: 1024,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.SetParallelism(4) // concurrent submitters per core
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if _, err := s.Submit(context.Background(), img); err != nil {
							b.Error(err)
							return
						}
					}
				})
				b.StopTimer()
				st := s.Stats()
				b.ReportMetric(float64(st.Completed)/b.Elapsed().Seconds(), "samples/s")
				b.ReportMetric(st.MeanBatch, "imgs/batch")
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				if err := s.Shutdown(ctx); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// Latency quantile estimation — the mergeable log-bucketed serve.Histogram
// against the fixed sorted-window buffer it replaced. Observe is the
// per-request cost; Quantile is the per-/stats-snapshot cost (the window
// pays a copy+sort per snapshot, the histogram a clone plus two bucket
// walks). The histogram also merges across shards exactly, which the
// window never could.

var benchLatencies = func() []time.Duration {
	rng := rand.New(rand.NewSource(9))
	out := make([]time.Duration, 4096)
	for i := range out {
		out[i] = time.Duration(rng.Int63n(int64(100 * time.Millisecond)))
	}
	return out
}()

func BenchmarkLatencyObserve_Histogram(b *testing.B) {
	h := serve.NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(benchLatencies[i%len(benchLatencies)])
	}
}

func BenchmarkLatencyObserve_Window(b *testing.B) {
	window := make([]time.Duration, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		window[i%len(window)] = benchLatencies[i%len(benchLatencies)]
	}
}

func BenchmarkLatencyQuantile_Histogram(b *testing.B) {
	h := serve.NewHistogram()
	for _, d := range benchLatencies[:1024] {
		h.Observe(d)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		snap := h.Clone() // what a stats snapshot pays
		if snap.Quantile(0.50) == 0 || snap.Quantile(0.99) == 0 {
			b.Fatal("zero quantile")
		}
	}
}

func BenchmarkLatencyQuantile_Window(b *testing.B) {
	window := append([]time.Duration(nil), benchLatencies[:1024]...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sorted := append([]time.Duration(nil), window...)
		sort.Slice(sorted, func(x, y int) bool { return sorted[x] < sorted[y] })
		if serve.NearestRank(sorted, 0.50) == 0 || serve.NearestRank(sorted, 0.99) == 0 {
			b.Fatal("zero quantile")
		}
	}
}

// Stats merging — the per-/stats-request cost of aggregating a fleet's
// counters on the shard router.

func BenchmarkStatsMerge(b *testing.B) {
	shards := make([]serve.Stats, 8)
	for i := range shards {
		n := uint64(1000 * (i + 1))
		shards[i] = serve.Stats{
			Submitted: n, Completed: n - 10, Failed: 5, Expired: 5,
			Batches:      n / 4,
			BatchHist:    []uint64{10, 20, 30, n/4 - 60},
			LatencyCount: int(n - 10),
			LatencyP50:   time.Duration(i+1) * time.Millisecond,
			LatencyP99:   time.Duration(i+2) * 3 * time.Millisecond,
			LatencyMax:   time.Duration(i+3) * 5 * time.Millisecond,
			Uptime:       time.Minute,
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := serve.Merge(shards...)
		if m.Submitted == 0 {
			b.Fatal("empty merge")
		}
	}
}

// Router proxy overhead — end-to-end routed classification against
// in-process fake workers, so the measurement is placement + proxy + stats
// bookkeeping, not model inference.

func BenchmarkRouterProxy(b *testing.B) {
	worker := func() *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("/classify", func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body)
			w.Write([]byte(`{"class":14,"decision":"accept"}`))
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"status":"ok","queue_depth":0}`))
		})
		return httptest.NewServer(mux)
	}
	w1, w2 := worker(), worker()
	defer w1.Close()
	defer w2.Close()
	router, err := shard.New([]string{w1.URL, w2.URL}, shard.Config{
		Logf: func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		router.Shutdown(ctx)
	}()
	front := httptest.NewServer(router.Mux())
	defer front.Close()
	body := []byte(`{"sign":"stop","seed":1}`)
	client := &http.Client{Timeout: 10 * time.Second}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Post(front.URL+"/classify", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
}

// Substrate microbenchmarks.

func BenchmarkSoftFloatMul(b *testing.B) {
	x, y := float32(1.7), float32(-2.3)
	var s float32
	for i := 0; i < b.N; i++ {
		s = fault.MulSoft(x, s+y)
	}
	_ = s
}

func BenchmarkSoftFloatAdd(b *testing.B) {
	x := float32(1.7)
	var s float32
	for i := 0; i < b.N; i++ {
		s = fault.AddSoft(s, x)
	}
	_ = s
}

func BenchmarkLeakyBucket(b *testing.B) {
	bucket := reliable.NewDefaultBucket()
	for i := 0; i < b.N; i++ {
		if i%1000 == 0 {
			bucket.Fail()
		} else {
			bucket.OK()
		}
	}
}

func benchOps(b *testing.B, mk func() (reliable.Ops, error)) {
	ops, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	engine, err := reliable.NewEngine(ops, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var acc float32
	for i := 0; i < b.N; i++ {
		v, err := engine.MAC(acc, 1.0001, 0.9999)
		if err != nil {
			b.Fatal(err)
		}
		acc = v * 1e-9
	}
	_ = acc
}

func BenchmarkReliableMAC_Plain(b *testing.B) {
	benchOps(b, func() (reliable.Ops, error) { return reliable.NewPlain(fault.Ideal{}) })
}

func BenchmarkReliableMAC_TemporalDMR(b *testing.B) {
	benchOps(b, func() (reliable.Ops, error) { return reliable.NewTemporalDMR(fault.Ideal{}) })
}

func BenchmarkReliableMAC_TMR(b *testing.B) {
	benchOps(b, func() (reliable.Ops, error) {
		return reliable.NewTMR(fault.Ideal{}, fault.Ideal{}, fault.Ideal{})
	})
}

// Hybrid end-to-end inference.

func benchHybrid(b *testing.B, wiring core.Wiring) {
	rng := rand.New(rand.NewSource(3))
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 32, Conv1Filters: 8, Conv1Kernel: 5,
		Conv2Filters: 8, Hidden: 16, Classes: 6, UseLRN: false,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	conv1, err := nn.FirstConv(net)
	if err != nil {
		b.Fatal(err)
	}
	pair, err := core.InstallSobelPair(conv1, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		Wiring: wiring, Mode: core.ModeTemporalDMR, Pair: pair,
		SafetyClasses: map[int]shape.Class{gtsrb.StopClass: shape.ClassOctagon},
	}
	imgSize := 32
	if wiring == core.WiringParallel {
		cfg.DownsampleFactor = 3
		imgSize = 96
	}
	h, err := core.NewHybridNetwork(cfg, net)
	if err != nil {
		b.Fatal(err)
	}
	img, err := gtsrb.AngledStopSign(imgSize, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Classify(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHybridClassify_Parallel(b *testing.B)   { benchHybrid(b, core.WiringParallel) }
func BenchmarkHybridClassify_Bifurcated(b *testing.B) { benchHybrid(b, core.WiringBifurcated) }

// Reliable execution under injected faults (includes retry work).

func BenchmarkReliableConvUnderFaults(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	in := tensor.MustNew(3, 16, 16)
	in.FillUniform(rng, 0, 1)
	filters := tensor.MustNew(4, 3, 3, 3)
	filters.FillUniform(rng, -0.5, 0.5)
	spec := reliable.ConvSpec{Stride: 1}
	seed := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed++
		alu, err := fault.NewTransient(1e-4, fault.BitFlip{Bit: -1}, rand.New(rand.NewSource(seed)))
		if err != nil {
			b.Fatal(err)
		}
		ops, err := reliable.NewTemporalDMR(alu)
		if err != nil {
			b.Fatal(err)
		}
		engine, err := reliable.NewEngine(ops, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reliable.Conv2D(engine, in, filters, nil, spec); err != nil &&
			!errors.Is(err, reliable.ErrBucketTripped) {
			b.Fatal(err)
		}
	}
}

// Analytic guarantee computation.

func BenchmarkGuarantee(b *testing.B) {
	params := core.GuaranteeParams{
		PerOpFaultProb: 1e-9, CollisionProb: 1.0 / 32,
		Mode: core.ModeTemporalDMR, BucketFactor: 2, BucketCeiling: 3,
		OpsPerInference: 210_830_400,
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.ComputeGuarantee(params); err != nil {
			b.Fatal(err)
		}
	}
}
