package repro_test

// End-to-end integration tests over the public facade: the flows a
// downstream adopter would build, exercised across package boundaries.

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/onnxlite"
	"repro/internal/shape"
	"repro/internal/train"
)

var (
	sharedNetOnce sync.Once
	sharedNet     *repro.Network
	sharedNetErr  error
)

// buildTrainedHybrid assembles the canonical pipeline: data → CNN with a
// pinned Sobel pair → training → hybrid wrap. The trained network is built
// once and shared (tests only read it).
func buildTrainedHybrid(t *testing.T, mode repro.RedundancyMode) (*repro.HybridNetwork, *repro.Network) {
	t.Helper()
	sharedNetOnce.Do(func() { sharedNet, sharedNetErr = buildTrainedNet() })
	if sharedNetErr != nil {
		t.Fatal(sharedNetErr)
	}
	net := sharedNet
	h, err := repro.NewHybridNetwork(repro.HybridConfig{
		Wiring: repro.WiringBifurcated, Mode: mode,
		Pair:          core.SobelPair{XIdx: 0, YIdx: 1},
		SafetyClasses: map[int]repro.ShapeClass{repro.StopClass: repro.ClassOctagon},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	return h, net
}

func buildTrainedNet() (*repro.Network, error) {
	rng := rand.New(rand.NewSource(101))
	ds, err := gtsrb.Generate(gtsrb.Config{Size: 32, PerClass: 14}, rng)
	if err != nil {
		return nil, err
	}
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 32, Conv1Filters: 10, Conv1Kernel: 5,
		Conv2Filters: 12, Hidden: 32, Classes: 6, UseLRN: true,
	}, rng)
	if err != nil {
		return nil, err
	}
	conv1, err := nn.FirstConv(net)
	if err != nil {
		return nil, err
	}
	pair, err := core.InstallSobelPair(conv1, 0, 1)
	if err != nil {
		return nil, err
	}
	freeze, err := train.NewFilterFreeze(conv1, train.FreezeHard, pair.XIdx, pair.YIdx)
	if err != nil {
		return nil, err
	}
	opt, err := train.NewSGD(0.03, 0.9, 1e-4)
	if err != nil {
		return nil, err
	}
	tr := &train.Trainer{Net: net, Opt: opt, BatchSize: 8, Epochs: 8,
		Freezes: []*train.FilterFreeze{freeze}, Rng: rng}
	if _, err := tr.Fit(ds); err != nil {
		return nil, err
	}
	return net, nil
}

func TestEndToEndTrainedHybridPipeline(t *testing.T) {
	h, net := buildTrainedHybrid(t, repro.ModeTemporalDMR)

	// The Sobel pair stayed pinned through training (hard freeze): filter 0
	// still equals the uniform Sobel-x kernel.
	conv1, err := nn.FirstConv(net)
	if err != nil {
		t.Fatal(err)
	}
	wantX, err := core.UniformSobelX(conv1.Kernel(), conv1.InChannels())
	if err != nil {
		t.Fatal(err)
	}
	gotX, err := conv1.Weight().Filter(0)
	if err != nil {
		t.Fatal(err)
	}
	if !gotX.Equal(wantX) {
		t.Error("hard-frozen Sobel filter moved during training")
	}

	// Batch of rendered signs: every stop-qualified decision must be an
	// octagon-confirmed stop, and no decision may violate the gating
	// invariants.
	rng := rand.New(rand.NewSource(102))
	cfg, err := gtsrb.Config{Size: 32}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	classes := gtsrb.StandardClasses()
	for i := 0; i < 18; i++ {
		spec := classes[i%len(classes)]
		img, err := gtsrb.Render(gtsrb.RandomParams(cfg, spec, rng), rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.Classify(img)
		if err != nil {
			t.Fatal(err)
		}
		switch res.Decision {
		case repro.DecisionQualified:
			if res.Class != repro.StopClass {
				t.Errorf("qualified decision for non-safety class %d", res.Class)
			}
			if res.Qualifier.Class != repro.ClassOctagon {
				t.Errorf("qualified without octagon confirmation: %v", res.Qualifier.Class)
			}
		case repro.DecisionRejected:
			if res.Class != repro.StopClass {
				t.Errorf("rejected decision for non-safety class %d", res.Class)
			}
		case repro.DecisionNotSafetyRelevant:
			if res.Class == repro.StopClass {
				t.Error("stop classification escaped qualification")
			}
		case repro.DecisionExecutionFailed:
			t.Error("execution failed on fault-free hardware")
		default:
			t.Errorf("unknown decision %v", res.Decision)
		}
	}
}

func TestEndToEndModelDocumentRoundTrip(t *testing.T) {
	h, net := buildTrainedHybrid(t, repro.ModePlain)
	cfg := h.Config()
	model, err := onnxlite.Export(net, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := onnxlite.Write(model, &buf); err != nil {
		t.Fatal(err)
	}
	model2, err := onnxlite.ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	net2, cfg2, err := onnxlite.Import(model2, rand.New(rand.NewSource(103)))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := repro.NewHybridNetwork(*cfg2, net2)
	if err != nil {
		t.Fatal(err)
	}
	img, err := gtsrb.AngledStopSign(32, rand.New(rand.NewSource(104)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h2.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if a.Class != b.Class || a.Decision != b.Decision {
		t.Errorf("deployed document disagrees with source: (%d,%v) vs (%d,%v)",
			a.Class, a.Decision, b.Class, b.Decision)
	}
}

func TestEndToEndFaultCampaignMatchesGuarantee(t *testing.T) {
	// Run the hybrid under moderate transient injection and check that the
	// analytic guarantee's qualitative predictions hold: no silent
	// corruption of the DCNN output, occasional corrected retries.
	_, net := buildTrainedHybrid(t, repro.ModeTemporalDMR)
	conv1, err := nn.FirstConv(net)
	if err != nil {
		t.Fatal(err)
	}
	pair := core.SobelPair{XIdx: 0, YIdx: 1}

	img, err := gtsrb.AngledStopSign(32, rand.New(rand.NewSource(105)))
	if err != nil {
		t.Fatal(err)
	}
	// Reference run on ideal hardware.
	clean, err := mustHybrid(t, net, pair, nil).Classify(img)
	if err != nil {
		t.Fatal(err)
	}

	seed := int64(0)
	sawRetry := false
	for trial := 0; trial < 10; trial++ {
		h := mustHybrid(t, net, pair, func() fault.ALU {
			seed++
			alu, err := fault.NewTransient(2e-7, fault.BitFlip{Bit: -1},
				rand.New(rand.NewSource(5000+seed)))
			if err != nil {
				panic(err)
			}
			return alu
		})
		res, err := h.Classify(img)
		if err != nil {
			t.Fatal(err)
		}
		if res.Decision == repro.DecisionExecutionFailed {
			continue // rare burst: availability loss, not a safety loss
		}
		if res.Class != clean.Class || res.Qualifier.Class != clean.Qualifier.Class {
			t.Errorf("trial %d: corrected execution changed the verdict", trial)
		}
		if res.Stats.Retries > 0 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Log("no retries observed at this rate (acceptable, but the test is weaker)")
	}
	_ = conv1
}

func mustHybrid(t *testing.T, net *repro.Network, pair core.SobelPair, alus core.ALUFactory) *repro.HybridNetwork {
	t.Helper()
	h, err := repro.NewHybridNetwork(repro.HybridConfig{
		Wiring: repro.WiringBifurcated, Mode: repro.ModeTemporalDMR,
		Pair: pair, ALUs: alus,
		SafetyClasses: map[int]repro.ShapeClass{repro.StopClass: repro.ClassOctagon},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestGuaranteeFacade(t *testing.T) {
	g, err := repro.ComputeGuarantee(repro.GuaranteeParams{
		PerOpFaultProb: 1e-9, CollisionProb: 1.0 / 32,
		Mode: repro.ModeTemporalDMR, BucketFactor: 2, BucketCeiling: 3,
		OpsPerInference: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.PUndetectedPerInference <= 0 || g.PUndetectedPerInference > 1e-9 {
		t.Errorf("per-inference SDC %v outside expected band", g.PUndetectedPerInference)
	}
}

func TestFacadeSymbols(t *testing.T) {
	// The re-exported enumerations must match the internal values (type
	// aliases make this a compile-time identity, but exercising them keeps
	// the facade honest if it ever switches to distinct types).
	if repro.ModePlain != core.ModePlain || repro.ClassOctagon != shape.ClassOctagon {
		t.Error("facade constants diverged")
	}
	var b repro.LeakyBucket
	if b.Fail() {
		t.Error("zero-value bucket should not trip on first error")
	}
}
