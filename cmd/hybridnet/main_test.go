package main

import (
	"path/filepath"
	"testing"
)

func TestTrainQualifyEvalCampaignFlow(t *testing.T) {
	model := filepath.Join(t.TempDir(), "model.json")

	if err := run([]string{"train", "-out", model, "-perclass", "6", "-epochs", "3", "-filters", "8"}); err != nil {
		t.Fatalf("train: %v", err)
	}
	for _, sign := range []string{"stop", "parking"} {
		if err := run([]string{"qualify", "-model", model, "-sign", sign}); err != nil {
			t.Fatalf("qualify %s: %v", sign, err)
		}
	}
	if err := run([]string{"eval", "-model", model, "-perclass", "3"}); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if err := run([]string{"campaign", "-model", model, "-trials", "3", "-rate", "1e-5"}); err != nil {
		t.Fatalf("campaign: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args should fail")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand should fail")
	}
	if err := run([]string{"qualify", "-model", "/nonexistent/model.json"}); err == nil {
		t.Error("missing model should fail")
	}
	if err := run([]string{"eval", "-model", "/nonexistent/model.json"}); err == nil {
		t.Error("missing model should fail")
	}
	if err := run([]string{"campaign", "-model", "x", "-mode", "bogus"}); err == nil {
		t.Error("unknown mode should fail")
	}
	if err := run([]string{"train", "-badflag"}); err == nil {
		t.Error("bad flag should fail")
	}

	model := filepath.Join(t.TempDir(), "m.json")
	if err := run([]string{"train", "-out", model, "-perclass", "2", "-epochs", "1", "-filters", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"qualify", "-model", model, "-sign", "nosuchsign"}); err == nil {
		t.Error("unknown sign should fail")
	}
}

func TestRenderSubcommand(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "signs")
	if err := run([]string{"render", "-out", dir, "-size", "32", "-perclass", "1"}); err != nil {
		t.Fatalf("render: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.png"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 6 {
		t.Errorf("wrote %d PNGs, want 6", len(matches))
	}
}
