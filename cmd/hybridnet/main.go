// Command hybridnet is the end-to-end CLI for the hybrid CNN: generate a
// synthetic dataset, train the classifier, assemble the hybrid network,
// classify images with qualification, export/import the platform-agnostic
// model description, and run fault-injection campaigns.
//
// Subcommands:
//
//	hybridnet train    -out model.json [-size 32] [-filters 16] [-perclass 20] [-epochs 10] [-subbatch 0] [-workers 1] [-seed 1]
//	hybridnet eval     -model model.json [-perclass 10] [-seed 2]
//	hybridnet qualify  -model model.json [-sign stop|yield|prohibition|parking|mandatory|warning] [-seed 3]
//	hybridnet campaign -model model.json [-rate 1e-4] [-trials 20] [-mode temporal-dmr|spatial-dmr|tmr|plain]
//	hybridnet render   -out dir [-size 96] [-perclass 2] [-seed 5]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/onnxlite"
	"repro/internal/train"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hybridnet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: hybridnet <train|eval|qualify|campaign> [flags]")
	}
	var err error
	switch args[0] {
	case "train":
		err = cmdTrain(args[1:])
	case "eval":
		err = cmdEval(args[1:])
	case "qualify":
		err = cmdQualify(args[1:])
	case "campaign":
		err = cmdCampaign(args[1:])
	case "render":
		err = cmdRender(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
	if err == flag.ErrHelp {
		// -h/-help printed the subcommand usage; that is a success, not an
		// error (and the flagdoc generator depends on the zero exit).
		return nil
	}
	return err
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	out := fs.String("out", "model.json", "output model path")
	size := fs.Int("size", 32, "CNN input size")
	filters := fs.Int("filters", 16, "first-layer filter count")
	perClass := fs.Int("perclass", 20, "training examples per class")
	epochs := fs.Int("epochs", 10, "training epochs")
	subBatch := fs.Int("subbatch", 0, "samples per batched backward pass (0 = whole worker shard, 1 = per-sample)")
	workers := fs.Int("workers", 1, "data-parallel trainer workers per mini-batch")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	cfg := nn.DefaultMicroConfig()
	cfg.InputSize = *size
	cfg.Conv1Filters = *filters
	net, err := nn.NewMicroAlexNet(cfg, rng)
	if err != nil {
		return err
	}
	conv1, err := nn.FirstConv(net)
	if err != nil {
		return err
	}
	// Pre-initialise the Sobel pair (Section III-B) and keep it pinned.
	pair, err := core.InstallSobelPair(conv1, 0, 1)
	if err != nil {
		return err
	}
	freeze, err := train.NewFilterFreeze(conv1, train.FreezeHard, pair.XIdx, pair.YIdx)
	if err != nil {
		return err
	}
	ds, err := gtsrb.Generate(gtsrb.Config{Size: *size, PerClass: *perClass}, rand.New(rand.NewSource(*seed+1)))
	if err != nil {
		return err
	}
	opt, err := train.NewSGD(0.03, 0.9, 1e-4)
	if err != nil {
		return err
	}
	tr := &train.Trainer{
		Net: net, Opt: opt, BatchSize: 8, Epochs: *epochs,
		SubBatch: *subBatch, Workers: *workers,
		Freezes: []*train.FilterFreeze{freeze}, Rng: rng,
		OnEpoch: func(epoch int, loss float64) error {
			fmt.Printf("epoch %2d  loss %.4f\n", epoch, loss)
			return nil
		},
	}
	if _, err := tr.Fit(ds); err != nil {
		return err
	}
	acc, err := train.Accuracy(net, ds)
	if err != nil {
		return err
	}
	fmt.Printf("training accuracy: %.4f\n", acc)

	hybridCfg := cli.StandardHybridConfig(pair)
	model, err := onnxlite.Export(net, &hybridCfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := onnxlite.Write(model, f); err != nil {
		return err
	}
	fmt.Printf("wrote hybrid model to %s\n", *out)
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	modelPath := fs.String("model", "model.json", "model path")
	perClass := fs.Int("perclass", 10, "test examples per class")
	seed := fs.Int64("seed", 2, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, net, err := cli.LoadHybrid(*modelPath, *seed)
	if err != nil {
		return err
	}
	// The model document does not carry the training input size; the CLI
	// convention is the default 32×32.
	ds, err := gtsrb.Generate(gtsrb.Config{Size: 32, PerClass: *perClass}, rand.New(rand.NewSource(*seed+1)))
	if err != nil {
		return err
	}
	cm, err := train.Evaluate(net, ds)
	if err != nil {
		return err
	}
	fmt.Print(cm.String())
	return nil
}

func cmdQualify(args []string) error {
	fs := flag.NewFlagSet("qualify", flag.ContinueOnError)
	modelPath := fs.String("model", "model.json", "model path")
	sign := fs.String("sign", "stop", "sign class to render and classify")
	seed := fs.Int64("seed", 3, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, _, err := cli.LoadHybrid(*modelPath, *seed)
	if err != nil {
		return err
	}
	var spec gtsrb.ClassSpec
	found := false
	for _, c := range gtsrb.StandardClasses() {
		if c.Name == *sign {
			spec, found = c, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown sign %q", *sign)
	}
	rng := rand.New(rand.NewSource(*seed))
	cfg, err := gtsrb.Config{Size: 32}.Normalize()
	if err != nil {
		return err
	}
	img, err := gtsrb.Render(gtsrb.RandomParams(cfg, spec, rng), rng)
	if err != nil {
		return err
	}
	res, err := h.Classify(img)
	if err != nil {
		return err
	}
	classes := gtsrb.StandardClasses()
	fmt.Printf("rendered:   %s\n", spec.Name)
	fmt.Printf("CNN class:  %s (confidence %.3f)\n", classes[res.Class].Name, res.Confidence)
	fmt.Printf("qualifier:  %v (peaks %d, SAX %s)\n", res.Qualifier.Class, res.Qualifier.Peaks, res.Qualifier.Word)
	fmt.Printf("decision:   %v\n", res.Decision)
	fmt.Printf("reliable ops: %d (retries %d)\n", res.Stats.Ops, res.Stats.Retries)
	return nil
}

func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	modelPath := fs.String("model", "model.json", "model path")
	rate := fs.Float64("rate", 1e-4, "transient fault rate per operation")
	trials := fs.Int("trials", 20, "injection trials")
	modeName := fs.String("mode", "temporal-dmr", "redundancy mode")
	seed := fs.Int64("seed", 4, "random seed")
	workers := fs.Int("workers", 0, "parallel trial workers (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	modes := map[string]core.RedundancyMode{
		"plain": core.ModePlain, "temporal-dmr": core.ModeTemporalDMR,
		"spatial-dmr": core.ModeSpatialDMR, "tmr": core.ModeTMR,
	}
	mode, ok := modes[*modeName]
	if !ok {
		return fmt.Errorf("unknown mode %q", *modeName)
	}
	_, net, err := cli.LoadHybrid(*modelPath, *seed)
	if err != nil {
		return err
	}
	cfg := cli.StandardHybridConfig(core.SobelPair{XIdx: 0, YIdx: 1})
	cfg.Mode = mode
	// Trials run across the worker pool; all randomness (ALU seeds, the
	// rendered sign) derives from the trial index so the tally is
	// independent of scheduling. The outcome mapping mirrors the serial
	// CLI of earlier revisions: a bucket trip is a detected unrecoverable
	// error, retries mean the fault was corrected, otherwise masked.
	trial := func(i int) (correct, signalled bool, err error) {
		cfgTrial := cfg
		aluSeed := *seed + int64(i)*1_000_000
		cfgTrial.ALUs = func() fault.ALU {
			aluSeed++
			alu, err := fault.NewTransient(*rate, fault.BitFlip{Bit: -1},
				rand.New(rand.NewSource(aluSeed)))
			if err != nil {
				panic(err) // unreachable: parameters validated above
			}
			return alu
		}
		h, err := core.NewHybridNetwork(cfgTrial, net)
		if err != nil {
			return false, false, err
		}
		img, err := gtsrb.AngledStopSign(32, rand.New(rand.NewSource(*seed+int64(i)+100)))
		if err != nil {
			return false, false, err
		}
		res, err := h.Classify(img)
		if err != nil {
			return false, false, err
		}
		switch {
		case res.Decision == core.DecisionExecutionFailed:
			return false, true, nil // detected
		case res.Stats.Retries > 0:
			return true, true, nil // corrected
		default:
			return true, false, nil // masked
		}
	}
	tally, err := fault.RunCampaignParallel(*trials, *workers, trial)
	if err != nil {
		return err
	}
	fmt.Printf("campaign (%s, rate %.1e): %s\n", *modeName, *rate, tally.String())
	return nil
}

func cmdRender(args []string) error {
	fs := flag.NewFlagSet("render", flag.ContinueOnError)
	out := fs.String("out", "signs", "output directory for PNGs")
	size := fs.Int("size", 96, "image size")
	perClass := fs.Int("perclass", 2, "images per class")
	seed := fs.Int64("seed", 5, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	cfg, err := gtsrb.Config{Size: *size}.Normalize()
	if err != nil {
		return err
	}
	n := 0
	for _, spec := range gtsrb.StandardClasses() {
		for i := 0; i < *perClass; i++ {
			img, err := gtsrb.Render(gtsrb.RandomParams(cfg, spec, rng), rng)
			if err != nil {
				return err
			}
			path := fmt.Sprintf("%s/%s_%02d.png", *out, spec.Name, i)
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := gtsrb.WritePNG(img, f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			n++
		}
	}
	fmt.Printf("wrote %d PNGs to %s/\n", n, *out)
	return nil
}
