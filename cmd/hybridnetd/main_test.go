package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/gtsrb"
	"repro/internal/serve"
)

// newTestServer wires a demo hybrid network behind the real scheduler and
// HTTP mux, exactly as run() does.
func newTestServer(t *testing.T) (*httptest.Server, *core.HybridNetwork) {
	t.Helper()
	h, _, err := cli.DemoHybrid(32, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := h.NewBatchClassifier(2)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := serve.New(bc, serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond, QueueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(sched, 10*time.Second, 32).mux())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := sched.Shutdown(ctx); err != nil {
			t.Errorf("scheduler shutdown: %v", err)
		}
	})
	return srv, h
}

func postClassify(t *testing.T, url string, body string) (*http.Response, classifyResponse, errorResponse) {
	t.Helper()
	resp, err := http.Post(url+"/classify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var ok classifyResponse
	var fail errorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &ok); err != nil {
			t.Fatalf("decode %q: %v", buf.String(), err)
		}
	} else if err := json.Unmarshal(buf.Bytes(), &fail); err != nil {
		t.Fatalf("decode error body %q: %v", buf.String(), err)
	}
	return resp, ok, fail
}

func TestClassifySign(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, got, _ := postClassify(t, srv.URL, `{"sign":"stop","seed":7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.ClassName == "" || got.Decision == "" || got.QualifierShape == "" {
		t.Fatalf("incomplete response: %+v", got)
	}
	if got.ReliableOps == 0 {
		t.Fatal("reliable path reported zero ops")
	}
}

func TestClassifyPNGRoundTrip(t *testing.T) {
	srv, h := newTestServer(t)
	rng := rand.New(rand.NewSource(9))
	img, err := gtsrb.AngledStopSign(32, rng)
	if err != nil {
		t.Fatal(err)
	}
	var png bytes.Buffer
	if err := gtsrb.WritePNG(img, &png); err != nil {
		t.Fatal(err)
	}
	// The served verdict must match a direct Classify of the identical
	// PNG-decoded image — the HTTP + scheduler path adds no drift.
	decoded, err := gtsrb.ReadPNG(bytes.NewReader(png.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := h.Classify(decoded)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(classifyRequest{ImagePNG: base64.StdEncoding.EncodeToString(png.Bytes())})
	if err != nil {
		t.Fatal(err)
	}
	resp, got, _ := postClassify(t, srv.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.Class != want.Class || got.Decision != want.Decision.String() ||
		got.QualifierShape != want.Qualifier.Class.String() || got.ReliableOps != want.Stats.Ops {
		t.Fatalf("served (%d,%s,%s,%d) != direct (%d,%v,%v,%d)",
			got.Class, got.Decision, got.QualifierShape, got.ReliableOps,
			want.Class, want.Decision, want.Qualifier.Class, want.Stats.Ops)
	}
}

func TestClassifyBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	// A well-formed PNG of the wrong size must be rejected at admission —
	// inside a micro-batch it would otherwise fail its co-batched riders.
	wrongSize, err := gtsrb.AngledStopSign(16, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	var png bytes.Buffer
	if err := gtsrb.WritePNG(wrongSize, &png); err != nil {
		t.Fatal(err)
	}
	cases := []string{
		`not json`,
		`{}`,
		`{"sign":"no-such-sign"}`,
		`{"sign":"stop","image_png":"AAAA"}`,
		`{"image_png":"!!!"}`,
		fmt.Sprintf(`{"image_png":%q}`, base64.StdEncoding.EncodeToString(png.Bytes())),
	}
	for _, body := range cases {
		resp, _, fail := postClassify(t, srv.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
		if fail.Error == "" {
			t.Errorf("body %q: missing error message", body)
		}
	}
	resp, err := http.Get(srv.URL + "/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /classify: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndStats(t *testing.T) {
	srv, _ := newTestServer(t)
	// Put one request through so stats are non-trivial.
	if resp, _, _ := postClassify(t, srv.URL, `{"sign":"yield"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d", resp.StatusCode)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Completed < 1 || stats.Batches < 1 || len(stats.BatchHist) == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	if stats.LatencyP50 <= 0 || stats.LatencyP99 < stats.LatencyP50 {
		t.Fatalf("latency quantiles inconsistent: p50=%v p99=%v", stats.LatencyP50, stats.LatencyP99)
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no -model/-demo accepted")
	}
	if err := run([]string{"-demo", "-model", "x.json"}); err == nil {
		t.Error("-demo with -model accepted")
	}
}
