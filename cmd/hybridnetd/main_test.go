package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/gtsrb"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// newTestServer wires a demo hybrid network behind the real scheduler and
// HTTP mux, exactly as run() does.
func newTestServer(t *testing.T) (*httptest.Server, *core.HybridNetwork) {
	t.Helper()
	h, _, err := cli.DemoHybrid(32, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := h.NewBatchClassifier(2)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := serve.New(bc, serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond, QueueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(sched, 10*time.Second, 32)
	s.rec = obs.NewRecorder(8)
	srv := httptest.NewServer(s.mux())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := sched.Shutdown(ctx); err != nil {
			t.Errorf("scheduler shutdown: %v", err)
		}
	})
	return srv, h
}

func postClassify(t *testing.T, url string, body string) (*http.Response, classifyResponse, errorResponse) {
	t.Helper()
	resp, err := http.Post(url+"/classify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var ok classifyResponse
	var fail errorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &ok); err != nil {
			t.Fatalf("decode %q: %v", buf.String(), err)
		}
	} else if err := json.Unmarshal(buf.Bytes(), &fail); err != nil {
		t.Fatalf("decode error body %q: %v", buf.String(), err)
	}
	return resp, ok, fail
}

func TestClassifySign(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, got, _ := postClassify(t, srv.URL, `{"sign":"stop","seed":7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.ClassName == "" || got.Decision == "" || got.QualifierShape == "" {
		t.Fatalf("incomplete response: %+v", got)
	}
	if got.ReliableOps == 0 {
		t.Fatal("reliable path reported zero ops")
	}
}

func TestClassifyPNGRoundTrip(t *testing.T) {
	srv, h := newTestServer(t)
	rng := rand.New(rand.NewSource(9))
	img, err := gtsrb.AngledStopSign(32, rng)
	if err != nil {
		t.Fatal(err)
	}
	var png bytes.Buffer
	if err := gtsrb.WritePNG(img, &png); err != nil {
		t.Fatal(err)
	}
	// The served verdict must match a direct Classify of the identical
	// PNG-decoded image — the HTTP + scheduler path adds no drift.
	decoded, err := gtsrb.ReadPNG(bytes.NewReader(png.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := h.Classify(decoded)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(classifyRequest{ImagePNG: base64.StdEncoding.EncodeToString(png.Bytes())})
	if err != nil {
		t.Fatal(err)
	}
	resp, got, _ := postClassify(t, srv.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.Class != want.Class || got.Decision != want.Decision.String() ||
		got.QualifierShape != want.Qualifier.Class.String() || got.ReliableOps != want.Stats.Ops {
		t.Fatalf("served (%d,%s,%s,%d) != direct (%d,%v,%v,%d)",
			got.Class, got.Decision, got.QualifierShape, got.ReliableOps,
			want.Class, want.Decision, want.Qualifier.Class, want.Stats.Ops)
	}
}

func TestClassifyBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	// A well-formed PNG of the wrong size must be rejected at admission —
	// inside a micro-batch it would otherwise fail its co-batched riders.
	wrongSize, err := gtsrb.AngledStopSign(16, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	var png bytes.Buffer
	if err := gtsrb.WritePNG(wrongSize, &png); err != nil {
		t.Fatal(err)
	}
	cases := []string{
		`not json`,
		`{}`,
		`{"sign":"no-such-sign"}`,
		`{"sign":"stop","image_png":"AAAA"}`,
		`{"image_png":"!!!"}`,
		fmt.Sprintf(`{"image_png":%q}`, base64.StdEncoding.EncodeToString(png.Bytes())),
	}
	for _, body := range cases {
		resp, _, fail := postClassify(t, srv.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
		if fail.Error == "" {
			t.Errorf("body %q: missing error message", body)
		}
	}
	resp, err := http.Get(srv.URL + "/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /classify: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndStats(t *testing.T) {
	srv, _ := newTestServer(t)
	// Put one request through so stats are non-trivial.
	if resp, _, _ := postClassify(t, srv.URL, `{"sign":"yield"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d", resp.StatusCode)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Completed < 1 || stats.Batches < 1 || len(stats.BatchHist) == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	if stats.LatencyP50 <= 0 || stats.LatencyP99 < stats.LatencyP50 {
		t.Fatalf("latency quantiles inconsistent: p50=%v p99=%v", stats.LatencyP50, stats.LatencyP99)
	}
}

// gatedBackend holds every batch until the gate yields.
type gatedBackend struct{ gate chan struct{} }

func (b gatedBackend) ClassifyBatch(imgs []*tensor.Tensor) ([]core.Result, error) {
	<-b.gate
	return make([]core.Result, len(imgs)), nil
}

// TestClassifyStatusMapping pins the error-to-status contract: a client that
// disconnects before the verdict gets the nginx-style 499 (no Retry-After),
// while 503 + Retry-After stays reserved for real load shedding
// (ErrQueueFull) so overload statistics are not polluted by client churn.
func TestClassifyStatusMapping(t *testing.T) {
	gate := make(chan struct{})
	// QueueSize 2: the cancelled client's request keeps its queue slot until
	// the flusher drains it, so the second slot is for the queued request
	// and the third submission sheds.
	sched, err := serve.New(gatedBackend{gate}, serve.Config{MaxBatch: 1, QueueSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sched, time.Second, 32)

	// Occupy the flusher inside the gated backend.
	occupied := make(chan error, 1)
	go func() {
		_, err := sched.Submit(context.Background(), tensor.MustNew(3, 32, 32))
		occupied <- err
	}()
	waitForCond(t, "flusher occupied", func() bool {
		st := sched.Stats()
		return st.Submitted == 1 && st.QueueDepth == 0
	})

	// Client gone: request context cancelled before the scheduler answers.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/classify",
		strings.NewReader(`{"sign":"stop","seed":1}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.handleClassify(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("client-gone status %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "" {
		t.Fatalf("client-gone response carries Retry-After %q — conflated with load shedding", ra)
	}

	// Queue full: one more queued request takes the second and last slot
	// (the cancelled client's request still holds the first), so the next
	// submission must shed with 503 + Retry-After.
	queued := make(chan error, 1)
	go func() {
		_, err := sched.Submit(context.Background(), tensor.MustNew(3, 32, 32))
		queued <- err
	}()
	waitForCond(t, "queue full", func() bool { return sched.Stats().QueueDepth == 2 })
	req = httptest.NewRequest(http.MethodPost, "/classify",
		strings.NewReader(`{"sign":"stop","seed":2}`))
	rec = httptest.NewRecorder()
	srv.handleClassify(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("load-shedding 503 lost its Retry-After")
	}

	close(gate)
	if err := <-occupied; err != nil {
		t.Fatalf("occupying request: %v", err)
	}
	if err := <-queued; err != nil {
		t.Fatalf("queued request: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := sched.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
}

// waitForCond polls cond for up to 5s.
func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no -model/-demo accepted")
	}
	if err := run([]string{"-demo", "-model", "x.json"}); err == nil {
		t.Error("-demo with -model accepted")
	}
}
