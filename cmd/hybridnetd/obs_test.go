package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

// TestTraceHeaderPropagation pins the trace contract at the daemon edge: a
// well-formed caller-sent X-Hybridnet-Trace is echoed verbatim (the router
// relies on this to stitch fleet-wide traces), anything else gets a freshly
// minted valid ID.
func TestTraceHeaderPropagation(t *testing.T) {
	srv, _ := newTestServer(t)

	post := func(traceHeader string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/classify",
			strings.NewReader(`{"sign":"stop","seed":3}`))
		if err != nil {
			t.Fatal(err)
		}
		if traceHeader != "" {
			req.Header.Set(obs.TraceHeader, traceHeader)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return resp
	}

	if got := post("router-abc123.7").Header.Get(obs.TraceHeader); got != "router-abc123.7" {
		t.Errorf("propagated trace %q, want the caller's router-abc123.7", got)
	}
	if got := post("").Header.Get(obs.TraceHeader); !obs.ValidTraceID(got) {
		t.Errorf("minted trace %q is not a valid ID", got)
	}
	// A malformed incoming ID must be replaced, not echoed (header injection).
	if got := post("bad id\twith\tjunk").Header.Get(obs.TraceHeader); !obs.ValidTraceID(got) || strings.Contains(got, " ") {
		t.Errorf("malformed incoming trace not replaced: %q", got)
	}
}

// TestSpansSumToLatency is the tracing acceptance check: the top-level span
// durations in X-Hybridnet-Spans must tile the request's wall clock — their
// sum within 5% of the server-measured end-to-end latency (latency_ms in the
// response). A small absolute floor absorbs scheduler jitter on sub-ms
// requests, where 5% is tighter than a single goroutine wakeup.
func TestSpansSumToLatency(t *testing.T) {
	srv, _ := newTestServer(t)
	wantStages := []string{"admission", "queue", "batch", "backend", "deliver"}

	for i := 0; i < 5; i++ {
		resp, got, _ := postClassify(t, srv.URL, fmt.Sprintf(`{"sign":"stop","seed":%d}`, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		spans, err := obs.ParseSpans(resp.Header.Get(obs.SpansHeader))
		if err != nil {
			t.Fatalf("spans header %q: %v", resp.Header.Get(obs.SpansHeader), err)
		}
		names := make(map[string]bool, len(spans))
		for _, s := range spans {
			names[s.Name] = true
		}
		for _, want := range wantStages {
			if !names[want] {
				t.Fatalf("span %q missing from %q", want, resp.Header.Get(obs.SpansHeader))
			}
		}
		sum := obs.SumTopLevel(spans).Seconds() * 1000 // ms
		total := got.LatencyMS
		diff := total - sum
		if diff < 0 {
			diff = -diff
		}
		tol := 0.05 * total
		if floor := 0.3; tol < floor { // 300µs jitter floor for sub-ms requests
			tol = floor
		}
		if diff > tol {
			t.Errorf("request %d: spans sum %.3fms vs end-to-end %.3fms — gap %.3fms exceeds %.3fms",
				i, sum, total, diff, tol)
		}
	}
}

// TestMetricsMatchesStats scrapes /metrics and /stats from the same quiesced
// process and cross-checks them: counters equal exactly, and the p50/p99 a
// Prometheus scraper would compute from the exposed buckets equals the /stats
// quantile to within one bucket width (19%) — the two endpoints are views
// over the same snapshot and can never disagree.
func TestMetricsMatchesStats(t *testing.T) {
	srv, _ := newTestServer(t)
	for i := 0; i < 12; i++ {
		if resp, _, _ := postClassify(t, srv.URL, fmt.Sprintf(`{"sign":"yield","seed":%d}`, i)); resp.StatusCode != http.StatusOK {
			t.Fatalf("classify %d: status %d", i, resp.StatusCode)
		}
	}

	// No traffic in flight: the two snapshots must agree exactly.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheus(string(raw))
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text: %v\n%s", err, raw)
	}

	counter := func(name string) float64 {
		t.Helper()
		f := fams[name]
		if f == nil || len(f.Samples) == 0 {
			t.Fatalf("family %s missing from /metrics", name)
		}
		return f.Samples[0].Value
	}
	if got := counter("hybridnet_requests_completed_total"); got != float64(st.Completed) {
		t.Errorf("completed_total = %v, /stats says %d", got, st.Completed)
	}
	if got := counter("hybridnet_requests_submitted_total"); got != float64(st.Submitted) {
		t.Errorf("submitted_total = %v, /stats says %d", got, st.Submitted)
	}
	if got := counter("hybridnet_batches_total"); got != float64(st.Batches) {
		t.Errorf("batches_total = %v, /stats says %d", got, st.Batches)
	}
	if fams["hybridnet_build_info"] == nil {
		t.Error("hybridnet_build_info missing from /metrics")
	}

	f := fams["hybridnet_request_latency_seconds"]
	if f == nil {
		t.Fatal("hybridnet_request_latency_seconds missing from /metrics")
	}
	for _, p := range []float64{0.50, 0.99} {
		// The family now carries per-class series alongside the aggregate;
		// class="" selects the unlabeled view (PromQL treats a missing
		// label as empty).
		metricsQ, err := obs.HistogramQuantile(f, p, map[string]string{"class": ""})
		if err != nil {
			t.Fatalf("HistogramQuantile(%v): %v", p, err)
		}
		statsQ := st.LatencyHist.Quantile(p).Seconds()
		if metricsQ < statsQ || metricsQ > statsQ*1.20 {
			t.Errorf("p%.0f: metrics %.6fs vs stats %.6fs — want within one bucket (19%%)",
				p*100, metricsQ, statsQ)
		}
	}
}

// TestDebugRequestsFlightRecorder drives traffic and checks the flight
// recorder surfaces it: /debug/requests returns the recent ring newest-first
// with valid trace IDs and full span breakdowns.
func TestDebugRequestsFlightRecorder(t *testing.T) {
	srv, _ := newTestServer(t)
	const n = 6
	traces := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		resp, _, _ := postClassify(t, srv.URL, fmt.Sprintf(`{"sign":"stop","seed":%d}`, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify %d: status %d", i, resp.StatusCode)
		}
		traces[resp.Header.Get(obs.TraceHeader)] = true
	}

	resp, err := http.Get(srv.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var dump obs.RecorderDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if dump.Total != n {
		t.Errorf("recorder total %d, want %d", dump.Total, n)
	}
	if len(dump.Recent) != n || len(dump.Slowest) != n {
		t.Fatalf("recorder holds %d recent / %d slowest, want %d each",
			len(dump.Recent), len(dump.Slowest), n)
	}
	for i, r := range dump.Recent {
		if !traces[r.ID] {
			t.Errorf("recent[%d] trace %q was never returned to a client", i, r.ID)
		}
		if r.Status != http.StatusOK || r.Total <= 0 || len(r.Spans) == 0 {
			t.Errorf("recent[%d] incomplete: status=%d total=%v spans=%d",
				i, r.Status, r.Total, len(r.Spans))
		}
		if i > 0 && r.Start.After(dump.Recent[i-1].Start) {
			t.Errorf("recent not newest-first at %d", i)
		}
	}
	for i := 1; i < len(dump.Slowest); i++ {
		if dump.Slowest[i].Total > dump.Slowest[i-1].Total {
			t.Errorf("slowest not descending at %d", i)
		}
	}
}
