// Command hybridnetd serves hybrid classifications over HTTP. It is the
// asynchronous front-end of the stack: every POST /classify is a single
// image; the internal/serve Scheduler coalesces concurrent requests into
// micro-batches and flushes them to a persistent core.BatchClassifier
// worker pool. Overload surfaces as fast 503s (bounded queue), slow
// requests as 504s (per-request deadline), and SIGINT/SIGTERM drains the
// queue before exiting.
//
// API:
//
//	POST /classify  {"sign":"stop","seed":7}  or  {"image_png":"<base64>"}
//	GET  /healthz   liveness + queue depth
//	GET  /stats     scheduler counters: queue depth, batch-size histogram,
//	                p50/p99 latency, backend utilisation
//
// Run a trained model:   hybridnetd -model model.json
// Run without a model:   hybridnetd -demo       (untrained weights; the
// reliable path, qualifier and decisions are real — for smoke and load
// testing only)
package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/gtsrb"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed; -h is not an error
		}
		fmt.Fprintln(os.Stderr, "hybridnetd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hybridnetd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	modelPath := fs.String("model", "", "onnxlite model path")
	demo := fs.Bool("demo", false, "serve an untrained demo network instead of -model")
	workers := fs.Int("workers", 0, "inference pool size (0 = all cores)")
	subBatch := fs.Int("subbatch", 0, "images per worker sub-batch in the batched CNN stage (0 = batch/workers)")
	maxBatch := fs.Int("max-batch", 8, "micro-batch flush threshold")
	maxDelay := fs.Duration("max-delay", 2*time.Millisecond, "max wait for a batch to fill")
	queueSize := fs.Int("queue", 64, "admission-control queue bound")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request deadline")
	size := fs.Int("size", 32, "input size for -demo and server-side rendering")
	seed := fs.Int64("seed", 1, "random seed")
	gemmWorkers := fs.Int("gemm-workers", 1, "goroutines per GEMM call (intra-GEMM row parallelism; 1 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tensor.SetGemmWorkers(*gemmWorkers)

	var h *core.HybridNetwork
	var err error
	switch {
	case *demo && *modelPath != "":
		return fmt.Errorf("-demo and -model are mutually exclusive")
	case *demo:
		h, _, err = cli.DemoHybrid(*size, 16, *seed)
	case *modelPath != "":
		h, _, err = cli.LoadHybrid(*modelPath, *seed)
	default:
		return fmt.Errorf("need -model or -demo")
	}
	if err != nil {
		return err
	}
	bc, err := cli.NewBatchClassifier(h, *workers, *subBatch)
	if err != nil {
		return err
	}
	sched, err := serve.New(bc, serve.Config{
		MaxBatch: *maxBatch, MaxDelay: *maxDelay, QueueSize: *queueSize,
	})
	if err != nil {
		return err
	}

	srv := newServer(sched, *timeout, *size)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.mux()}
	log.Printf("hybridnetd listening on %s (workers=%d subbatch=%d max-batch=%d max-delay=%v queue=%d gemm=%s gemm-workers=%d)",
		ln.Addr(), bc.Workers(), bc.SubBatch(), *maxBatch, *maxDelay, *queueSize,
		tensor.GemmKernel(), tensor.GemmWorkers())
	// Worker mode: report the bound address on stdout so a supervisor
	// (hybridnet-router) that started us with -addr 127.0.0.1:0 can learn
	// the kernel-assigned port. Logs go to stderr, so this is the only
	// stdout traffic.
	if err := cli.WriteAddrReport(os.Stdout, ln.Addr().String()); err != nil {
		return fmt.Errorf("report bound address: %w", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("hybridnetd shutting down: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := sched.Shutdown(shutdownCtx); err != nil {
		return err
	}
	st := sched.Stats()
	log.Printf("hybridnetd drained: %d completed in %d batches (mean %.2f)",
		st.Completed, st.Batches, st.MeanBatch)
	return nil
}

// server holds the HTTP handler state.
type server struct {
	sched   *serve.Scheduler
	timeout time.Duration
	size    int // server-side render size
	start   time.Time
}

func newServer(sched *serve.Scheduler, timeout time.Duration, size int) *server {
	return &server{sched: sched, timeout: timeout, size: size, start: time.Now()}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", s.handleClassify)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// classifyRequest is the POST /classify body: either a base64 PNG or the
// name of a synthetic sign to render server-side (demo and load testing).
type classifyRequest struct {
	ImagePNG string `json:"image_png,omitempty"`
	Sign     string `json:"sign,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

type classifyResponse struct {
	Class          int     `json:"class"`
	ClassName      string  `json:"class_name"`
	Confidence     float32 `json:"confidence"`
	Decision       string  `json:"decision"`
	QualifierShape string  `json:"qualifier_shape"`
	ReliableOps    uint64  `json:"reliable_ops"`
	ReliableRetry  uint64  `json:"reliable_retries"`
	LatencyMS      float64 `json:"latency_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// statusClientClosedRequest is the nginx-convention 499 for "client closed
// the connection before the server answered". net/http has no constant for
// it; using it keeps client disconnects distinct from 503 load shedding.
const statusClientClosedRequest = 499

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("hybridnetd: write response: %v", err)
	}
}

func (s *server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	var req classifyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad request body: %v", err)})
		return
	}
	img, err := s.decodeImage(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	start := time.Now()
	res, err := s.sched.Submit(ctx, img)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrClosed):
			// Real load shedding: 503 + Retry-After is reserved for these
			// two, so the load-shedding rate in client stats means overload.
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			// The client went away before the verdict — not server overload.
			// Nobody reads this response; the distinct status keeps client
			// disconnects out of the 503 load-shedding accounting.
			status = statusClientClosedRequest
			log.Printf("hybridnetd: client gone before verdict: %v", err)
		}
		writeJSON(w, status, errorResponse{err.Error()})
		return
	}
	resp := classifyResponse{
		Class:          res.Class,
		Confidence:     res.Confidence,
		Decision:       res.Decision.String(),
		QualifierShape: res.Qualifier.Class.String(),
		ReliableOps:    res.Stats.Ops,
		ReliableRetry:  res.Stats.Retries,
		LatencyMS:      float64(time.Since(start).Microseconds()) / 1000,
	}
	if classes := gtsrb.StandardClasses(); res.Class >= 0 && res.Class < len(classes) {
		resp.ClassName = classes[res.Class].Name
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeImage resolves the request body to a CHW tensor.
func (s *server) decodeImage(req classifyRequest) (*tensor.Tensor, error) {
	switch {
	case req.ImagePNG != "" && req.Sign != "":
		return nil, fmt.Errorf("image_png and sign are mutually exclusive")
	case req.ImagePNG != "":
		raw, err := base64.StdEncoding.DecodeString(req.ImagePNG)
		if err != nil {
			return nil, fmt.Errorf("image_png is not valid base64: %v", err)
		}
		img, err := gtsrb.ReadPNG(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("image_png: %v", err)
		}
		// Reject wrong-sized images at admission: a bad image inside a
		// micro-batch would otherwise fail every request riding the same
		// batch with a 500 instead of failing its own sender with a 400.
		if img.Rank() != 3 || img.Dim(1) != s.size || img.Dim(2) != s.size {
			return nil, fmt.Errorf("image_png must decode to %dx%d, got %dx%d (serve with matching -size)",
				s.size, s.size, img.Dim(1), img.Dim(2))
		}
		return img, nil
	case req.Sign != "":
		var spec gtsrb.ClassSpec
		found := false
		for _, c := range gtsrb.StandardClasses() {
			if c.Name == req.Sign {
				spec, found = c, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown sign %q", req.Sign)
		}
		cfg, err := gtsrb.Config{Size: s.size}.Normalize()
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(req.Seed))
		return gtsrb.Render(gtsrb.RandomParams(cfg, spec, rng), rng)
	default:
		return nil, fmt.Errorf("need image_png or sign")
	}
}

// handleHealthz reports liveness plus the two signals the shard router
// feeds into placement: the live queue depth (load) and the rolling
// per-image service time (capacity, for adaptive weighting). The build
// block identifies the compute substrate — which GEMM kernel this binary
// selected at init and what the host CPU offers — so a heterogeneous fleet
// (some workers on SIMD, some on the pure-Go fallback) is diagnosable from
// the outside.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"queue_depth": st.QueueDepth,
		"service_ns":  st.ServiceTime.Nanoseconds(),
		"uptime_s":    time.Since(s.start).Seconds(),
		"build": map[string]any{
			"gemm_kernel":  tensor.GemmKernel(),
			"cpu_features": tensor.CPUFeatures(),
			"gemm_workers": tensor.GemmWorkers(),
			"gomaxprocs":   runtime.GOMAXPROCS(0),
			"num_cpu":      runtime.NumCPU(),
			"go_arch":      runtime.GOARCH,
		},
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Stats())
}
