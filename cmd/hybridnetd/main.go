// Command hybridnetd serves hybrid classifications over HTTP. It is the
// asynchronous front-end of the stack: every POST /classify is a single
// image; the internal/serve Scheduler coalesces concurrent requests into
// micro-batches and flushes them to a persistent core.BatchClassifier
// worker pool. Overload surfaces as fast 503s (bounded queue), slow
// requests as 504s (per-request deadline), and SIGINT/SIGTERM drains the
// queue before exiting.
//
// API:
//
//	POST /classify        {"sign":"stop","seed":7}  or  {"image_png":"<base64>"}
//	GET  /healthz         liveness + queue depth
//	GET  /stats           scheduler counters: queue depth, batch-size histogram,
//	                      p50/p99 latency, backend utilisation
//	GET  /metrics         the same counters in Prometheus text format
//	GET  /debug/requests  flight recorder: K slowest + K most recent traces
//
// Every /classify response carries X-Hybridnet-Trace (the request's trace
// ID, minted here unless the caller — typically hybridnet-router — sent one)
// and X-Hybridnet-Spans (the per-stage timing breakdown). -debug-addr
// optionally exposes net/http/pprof on a second listener.
//
// Run a trained model:   hybridnetd -model model.json
// Run without a model:   hybridnetd -demo       (untrained weights; the
// reliable path, qualifier and decisions are real — for smoke and load
// testing only)
package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only via -debug-addr
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/gtsrb"
	"repro/internal/obs"
	"repro/internal/obs/logx"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed; -h is not an error
		}
		fmt.Fprintln(os.Stderr, "hybridnetd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hybridnetd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	modelPath := fs.String("model", "", "onnxlite model path")
	demo := fs.Bool("demo", false, "serve an untrained demo network instead of -model")
	workers := fs.Int("workers", 0, "inference pool size (0 = all cores)")
	subBatch := fs.Int("subbatch", 0, "images per worker sub-batch in the batched CNN stage (0 = batch/workers)")
	maxBatch := fs.Int("max-batch", 8, "micro-batch flush threshold")
	maxDelay := fs.Duration("max-delay", 2*time.Millisecond, "max wait for a batch to fill")
	queueSize := fs.Int("queue", 64, "admission-control queue bound per service class")
	classQueues := fs.String("class-queues", "", "per-class queue bound overrides, e.g. guaranteed=64,fast=128,budget=32 (unset classes inherit -queue)")
	defaultClass := fs.String("default-class", "guaranteed", "service class for requests without an X-Hybridnet-Class header (guaranteed|fast|budget)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request deadline")
	size := fs.Int("size", 32, "input size for -demo and server-side rendering")
	seed := fs.Int64("seed", 1, "random seed")
	gemmWorkers := fs.Int("gemm-workers", 1, "goroutines per GEMM call (intra-GEMM row parallelism; 1 = off)")
	debugAddr := fs.String("debug-addr", "", "optional second listen address exposing net/http/pprof (empty = off)")
	traceSample := fs.Float64("trace-sample", 0, "fraction of traced requests logged with their span breakdown (0 = off, 1 = all)")
	traceDepth := fs.Int("trace-depth", obs.DefaultRecorderDepth, "flight recorder depth: K slowest + K most recent traces kept for /debug/requests")
	logLevel := fs.String("log-level", "info", "log verbosity: debug|info|warn|error")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tensor.SetGemmWorkers(*gemmWorkers)
	level, err := logx.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := logx.New(os.Stderr, level)

	var h *core.HybridNetwork
	switch {
	case *demo && *modelPath != "":
		return fmt.Errorf("-demo and -model are mutually exclusive")
	case *demo:
		h, _, err = cli.DemoHybrid(*size, 16, *seed)
	case *modelPath != "":
		h, _, err = cli.LoadHybrid(*modelPath, *seed)
	default:
		return fmt.Errorf("need -model or -demo")
	}
	if err != nil {
		return err
	}
	bc, err := cli.NewBatchClassifier(h, *workers, *subBatch)
	if err != nil {
		return err
	}
	defClass, err := serve.ParseClass(*defaultClass)
	if err != nil {
		return err
	}
	classBounds, err := serve.ParseClassInts(*classQueues)
	if err != nil {
		return fmt.Errorf("-class-queues: %w", err)
	}
	sched, err := serve.New(bc, serve.Config{
		MaxBatch: *maxBatch, MaxDelay: *maxDelay, QueueSize: *queueSize,
		ClassQueues: classBounds,
	})
	if err != nil {
		return err
	}

	srv := newServer(sched, *timeout, *size)
	srv.defaultClass = defClass
	srv.log = logger
	srv.rec = obs.NewRecorder(*traceDepth)
	srv.sample = newSampler(*traceSample)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.mux()}
	logger.Info("listening",
		"addr", ln.Addr().String(), "workers", bc.Workers(), "subbatch", bc.SubBatch(),
		"max_batch", *maxBatch, "max_delay", *maxDelay, "queue", *queueSize,
		"gemm", tensor.GemmKernel(), "gemm_workers", tensor.GemmWorkers())
	if *debugAddr != "" {
		// pprof rides the DefaultServeMux (the blank net/http/pprof import);
		// it only becomes reachable when the operator asks for the second
		// listener, so the serving port never exposes profiling.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		logger.Info("pprof listening", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, nil); err != nil {
				logger.Warn("pprof server exited", "err", err)
			}
		}()
	}
	// Worker mode: report the bound address on stdout so a supervisor
	// (hybridnet-router) that started us with -addr 127.0.0.1:0 can learn
	// the kernel-assigned port. Logs go to stderr, so this is the only
	// stdout traffic.
	if err := cli.WriteAddrReport(os.Stdout, ln.Addr().String()); err != nil {
		return fmt.Errorf("report bound address: %w", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := sched.Shutdown(shutdownCtx); err != nil {
		return err
	}
	st := sched.Stats()
	logger.Info("drained", "completed", st.Completed, "batches", st.Batches,
		"mean_batch", st.MeanBatch)
	return nil
}

// sampler decides which traced requests get their span breakdown logged: a
// deterministic 1-in-N counter derived from the -trace-sample fraction, so a
// given rate yields a predictable log volume (no per-request randomness).
type sampler struct {
	every uint64 // 0 = never
	n     atomic.Uint64
}

func newSampler(fraction float64) *sampler {
	s := &sampler{}
	if fraction > 0 {
		if fraction > 1 {
			fraction = 1
		}
		s.every = uint64(1 / fraction)
		if s.every < 1 {
			s.every = 1
		}
	}
	return s
}

func (s *sampler) hit() bool {
	if s == nil || s.every == 0 {
		return false
	}
	return s.n.Add(1)%s.every == 0
}

// server holds the HTTP handler state.
type server struct {
	sched        *serve.Scheduler
	timeout      time.Duration
	size         int // server-side render size
	start        time.Time
	defaultClass serve.Class   // class for requests without an X-Hybridnet-Class header
	log          *logx.Logger  // nil-safe: tests construct a bare server
	rec          *obs.Recorder // nil-safe flight recorder
	sample       *sampler      // nil-safe trace-log sampler
}

func newServer(sched *serve.Scheduler, timeout time.Duration, size int) *server {
	return &server{sched: sched, timeout: timeout, size: size, start: time.Now()}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", s.handleClassify)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	return mux
}

// classifyRequest is the POST /classify body: either a base64 PNG or the
// name of a synthetic sign to render server-side (demo and load testing).
type classifyRequest struct {
	ImagePNG string `json:"image_png,omitempty"`
	Sign     string `json:"sign,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

// classifyResponse keeps "class" for the CNN's predicted class index;
// service_class/degraded (adjacent in the encoding, so
// `"service_class":"budget","degraded":true` is a stable marker) report
// the tier the request was served under and whether overload degraded a
// budget request into the CNN-only pipeline.
type classifyResponse struct {
	Class          int     `json:"class"`
	ClassName      string  `json:"class_name"`
	Confidence     float32 `json:"confidence"`
	Decision       string  `json:"decision"`
	QualifierShape string  `json:"qualifier_shape"`
	ServiceClass   string  `json:"service_class"`
	Degraded       bool    `json:"degraded"`
	ReliableOps    uint64  `json:"reliable_ops"`
	ReliableRetry  uint64  `json:"reliable_retries"`
	LatencyMS      float64 `json:"latency_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// statusClientClosedRequest is the nginx-convention 499 for "client closed
// the connection before the server answered". net/http has no constant for
// it; using it keeps client disconnects distinct from 503 load shedding.
const statusClientClosedRequest = 499

// retryAfterSecs renders a backoff duration as the whole-second string the
// Retry-After header wants, rounding up and never below 1.
func retryAfterSecs(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logx.Default().Warn("write response", "err", err)
	}
}

// traceID resolves the request's trace ID: the propagated header if the
// caller (the router, typically) sent a well-formed one, a freshly minted ID
// otherwise.
func traceID(r *http.Request) string {
	if id := r.Header.Get(obs.TraceHeader); obs.ValidTraceID(id) {
		return id
	}
	return obs.NewTraceID()
}

// schedSpans turns the scheduler's Timing into the request's span list:
// contiguous top-level stages (queue wait, batch assembly, backend) whose
// deltas tile the scheduler's portion of the wall clock, plus dotted
// backend.* sub-spans carrying the batch-level pipeline breakdown (summed
// per-worker wall time — drill-down data, excluded from the top-level sum).
func schedSpans(tm serve.Timing, spans []obs.Span) []obs.Span {
	if tm.Done.IsZero() {
		return spans
	}
	spans = append(spans,
		obs.Span{Name: "queue", Dur: tm.Picked.Sub(tm.Enqueued)},
		obs.Span{Name: "batch", Dur: tm.Dispatched.Sub(tm.Picked)},
		obs.Span{Name: "backend", Dur: tm.Done.Sub(tm.Dispatched)},
	)
	if st := tm.Stages; st.Reliable > 0 || st.Qualifier > 0 || st.CNN > 0 {
		spans = append(spans,
			obs.Span{Name: "backend.reliable", Dur: st.Reliable},
			obs.Span{Name: "backend.qualifier", Dur: st.Qualifier},
			obs.Span{Name: "backend.cnn", Dur: st.CNN},
		)
	}
	return spans
}

// finishTrace files the completed request with the flight recorder and emits
// the structured outcome line: errors always (one warn line per 503/504/499
// with the trace ID), successes at debug, and -trace-sample promotes a
// deterministic fraction of requests to info with the full span breakdown.
func (s *server) finishTrace(rec obs.TraceRecord, batch int, errMsg string) {
	s.rec.Record(rec)
	level := logx.Debug
	if rec.Status != http.StatusOK {
		level = logx.Warn
	}
	sampled := s.sample.hit()
	if sampled && level < logx.Info {
		level = logx.Info
	}
	if !s.log.Enabled(level) {
		return
	}
	kvs := []any{
		"trace", rec.ID, "status", rec.Status,
		"total_ms", float64(rec.Total.Microseconds()) / 1000,
	}
	if batch > 0 {
		kvs = append(kvs, "batch", batch)
	}
	if errMsg != "" {
		kvs = append(kvs, "err", errMsg)
	}
	if d := rec.Attrs["decision"]; d != "" {
		kvs = append(kvs, "decision", d)
	}
	if sampled && len(rec.Spans) > 0 {
		kvs = append(kvs, "spans", obs.FormatSpans(rec.Spans))
	}
	switch level {
	case logx.Warn:
		s.log.Warn("request", kvs...)
	case logx.Info:
		s.log.Info("request", kvs...)
	default:
		s.log.Debug("request", kvs...)
	}
}

func (s *server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	start := time.Now()
	trace := traceID(r)
	w.Header().Set(obs.TraceHeader, trace)
	var req classifyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad request body: %v", err)})
		return
	}
	img, err := s.decodeImage(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	class := s.defaultClass
	if v := r.Header.Get(obs.ClassHeader); v != "" {
		class, err = serve.ParseClass(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
			return
		}
	}
	// admission covers everything before the scheduler saw the request:
	// body read, decode/render, deadline setup.
	spans := []obs.Span{{Name: "admission", Dur: time.Since(start)}}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	res, timing, err := s.sched.SubmitTraced(ctx, img, class)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrClosed):
			// Real load shedding: 503 + Retry-After is reserved for these
			// two, so the load-shedding rate in client stats means overload.
			// The backoff is proportional: this class's queue depth × the
			// EWMA per-image service time, rounded up to whole seconds.
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", retryAfterSecs(s.sched.RetryAfter(class)))
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			// The client went away before the verdict — not server overload.
			// Nobody reads this response; the distinct status keeps client
			// disconnects out of the 503 load-shedding accounting.
			status = statusClientClosedRequest
		}
		// Failed requests have no scheduler breakdown; the wait span covers
		// the whole time inside Submit (queued until rejection/expiry).
		spans = append(spans, obs.Span{Name: "wait", Dur: time.Since(start) - spans[0].Dur})
		w.Header().Set(obs.SpansHeader, obs.FormatSpans(spans))
		writeJSON(w, status, errorResponse{err.Error()})
		s.finishTrace(obs.TraceRecord{
			ID: trace, Start: start, Status: status, Total: time.Since(start), Spans: spans,
		}, 0, err.Error())
		return
	}
	spans = schedSpans(timing, spans)
	// deliver is the handoff tail: backend done → response committed here.
	// (The only wall time the spans don't cover is the sub-microsecond gap
	// between the admission measurement and the scheduler's enqueue stamp.)
	spans = append(spans, obs.Span{Name: "deliver", Dur: time.Since(timing.Done)})
	w.Header().Set(obs.SpansHeader, obs.FormatSpans(spans))
	resp := classifyResponse{
		Class:          res.Class,
		Confidence:     res.Confidence,
		Decision:       res.Decision.String(),
		QualifierShape: res.Qualifier.Class.String(),
		ServiceClass:   timing.Class.String(),
		Degraded:       timing.Degraded,
		ReliableOps:    res.Stats.Ops,
		ReliableRetry:  res.Stats.Retries,
		LatencyMS:      float64(time.Since(start).Microseconds()) / 1000,
	}
	if classes := gtsrb.StandardClasses(); res.Class >= 0 && res.Class < len(classes) {
		resp.ClassName = classes[res.Class].Name
	}
	writeJSON(w, http.StatusOK, resp)
	s.finishTrace(obs.TraceRecord{
		ID: trace, Start: start, Status: http.StatusOK, Total: time.Since(start), Spans: spans,
		Attrs: map[string]string{"decision": res.Decision.String()},
	}, timing.BatchSize, "")
}

// decodeImage resolves the request body to a CHW tensor.
func (s *server) decodeImage(req classifyRequest) (*tensor.Tensor, error) {
	switch {
	case req.ImagePNG != "" && req.Sign != "":
		return nil, fmt.Errorf("image_png and sign are mutually exclusive")
	case req.ImagePNG != "":
		raw, err := base64.StdEncoding.DecodeString(req.ImagePNG)
		if err != nil {
			return nil, fmt.Errorf("image_png is not valid base64: %v", err)
		}
		img, err := gtsrb.ReadPNG(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("image_png: %v", err)
		}
		// Reject wrong-sized images at admission: a bad image inside a
		// micro-batch would otherwise fail every request riding the same
		// batch with a 500 instead of failing its own sender with a 400.
		if img.Rank() != 3 || img.Dim(1) != s.size || img.Dim(2) != s.size {
			return nil, fmt.Errorf("image_png must decode to %dx%d, got %dx%d (serve with matching -size)",
				s.size, s.size, img.Dim(1), img.Dim(2))
		}
		return img, nil
	case req.Sign != "":
		var spec gtsrb.ClassSpec
		found := false
		for _, c := range gtsrb.StandardClasses() {
			if c.Name == req.Sign {
				spec, found = c, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown sign %q", req.Sign)
		}
		cfg, err := gtsrb.Config{Size: s.size}.Normalize()
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(req.Seed))
		return gtsrb.Render(gtsrb.RandomParams(cfg, spec, rng), rng)
	default:
		return nil, fmt.Errorf("need image_png or sign")
	}
}

// handleHealthz reports liveness plus the signals the shard router feeds
// into placement: the live queue depth (load), the rolling per-image
// service time (capacity, for adaptive weighting), and the self-computed
// min-max advertised weight (consumed by `-placement minmax`). The build
// block identifies the compute substrate — which GEMM kernel this binary
// selected at init and what the host CPU offers — so a heterogeneous fleet
// (some workers on SIMD, some on the pure-Go fallback) is diagnosable from
// the outside.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Stats()
	classDepths := make(map[string]int, len(st.Classes))
	for _, cs := range st.Classes {
		classDepths[cs.Class] = cs.QueueDepth
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":             "ok",
		"queue_depth":        st.QueueDepth,
		"class_queue_depths": classDepths,
		"service_ns":         st.ServiceTime.Nanoseconds(),
		"advertised_weight":  st.AdvertisedWeight,
		"uptime_s":           time.Since(s.start).Seconds(),
		"build": map[string]any{
			"gemm_kernel":  tensor.GemmKernel(),
			"cpu_features": tensor.CPUFeatures(),
			"gemm_workers": tensor.GemmWorkers(),
			"gomaxprocs":   runtime.GOMAXPROCS(0),
			"num_cpu":      runtime.NumCPU(),
			"go_arch":      runtime.GOARCH,
		},
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Stats())
}

// handleMetrics renders the scheduler snapshot in Prometheus text format.
// It is a stateless view over the same counters /stats serves, so the two
// endpoints can never disagree.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	obs.WriteServeStats(p, s.sched.Stats())
	p.Info("hybridnet_build_info",
		"Compute substrate of this worker: selected GEMM kernel and host CPU.",
		obs.Label{Name: "gemm_kernel", Value: tensor.GemmKernel()},
		obs.Label{Name: "gemm_workers", Value: fmt.Sprint(tensor.GemmWorkers())},
		obs.Label{Name: "go_arch", Value: runtime.GOARCH},
	)
	if err := p.Err(); err != nil {
		s.log.Warn("write metrics", "err", err)
	}
}

// handleDebugRequests dumps the flight recorder: the K most recent and K
// slowest request traces this process has served.
func (s *server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.rec.Snapshot())
}
