package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestClassifyServiceClassHeader: the worker resolves X-Hybridnet-Class
// (absent = -default-class, invalid = 400) and reports the tier in the
// response, with the `"service_class":...,"degraded":...` pair adjacent in
// the raw encoding — the stable marker the CI smoke greps for.
func TestClassifyServiceClassHeader(t *testing.T) {
	srv, _ := newTestServer(t)

	post := func(class string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/classify",
			strings.NewReader(`{"sign":"stop","seed":3}`))
		if err != nil {
			t.Fatal(err)
		}
		if class != "" {
			req.Header.Set(obs.ClassHeader, class)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := post("")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("headerless classify: status %d body %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"service_class":"guaranteed","degraded":false`) {
		t.Errorf("headerless response lacks the guaranteed/undegraded marker: %s", body)
	}

	resp, body = post("fast")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast classify: status %d body %s", resp.StatusCode, body)
	}
	var got classifyResponse
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.ServiceClass != "fast" || got.Degraded {
		t.Errorf("fast response reports service_class=%q degraded=%v", got.ServiceClass, got.Degraded)
	}
	// The fast pipeline skips the reliable stage entirely.
	if got.ReliableOps != 0 {
		t.Errorf("fast response counted %d reliable ops, want 0", got.ReliableOps)
	}

	resp, body = post("premium")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "premium") {
		t.Errorf("invalid class: status %d body %s, want 400 naming the class", resp.StatusCode, body)
	}
}

// TestHealthzClassQueueDepths: the worker's health report carries the
// per-class queue split the router's class-aware placement consumes.
func TestHealthzClassQueueDepths(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		ClassQueueDepths map[string]int `json:"class_queue_depths"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"guaranteed", "fast", "budget"} {
		if _, ok := body.ClassQueueDepths[class]; !ok {
			t.Errorf("healthz class_queue_depths missing %q: %v", class, body.ClassQueueDepths)
		}
	}
}

// TestRetryAfterSecs pins the Retry-After rendering: whole seconds,
// rounded up, never below 1.
func TestRetryAfterSecs(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{time.Nanosecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{time.Second + time.Nanosecond, "2"},
		{24 * time.Second, "24"},
	}
	for _, c := range cases {
		if got := retryAfterSecs(c.d); got != c.want {
			t.Errorf("retryAfterSecs(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
