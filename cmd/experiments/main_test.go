package main

import "testing"

func TestSelectiveExperiments(t *testing.T) {
	// The fast experiments; the trained ones run at their default scale and
	// are exercised in internal/experiments' own tests, so only spot-check
	// the wiring here.
	for _, which := range []string{"table1", "figure3", "guarantee"} {
		if err := run([]string{"-which", which}); err != nil {
			t.Fatalf("%s: %v", which, err)
		}
	}
}

func TestExperimentsCoverageAndRollback(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments take a few seconds")
	}
	for _, which := range []string{"coverage", "rollback"} {
		if err := run([]string{"-which", which}); err != nil {
			t.Fatalf("%s: %v", which, err)
		}
	}
}

func TestExperimentsErrors(t *testing.T) {
	if err := run([]string{"-which", "bogus"}); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-notaflag"}); err == nil {
		t.Error("bad flag should fail")
	}
}
