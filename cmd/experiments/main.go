// Command experiments regenerates every table and figure of the paper plus
// the repository's ablations, printing Markdown to stdout.
//
// Usage:
//
//	experiments [-which all|table1|figure3|figure4|intext|freeze|coverage|rollback|guarantee]
//	            [-full] [-seed N]
//
// -full runs Table 1 at the paper's exact dimensions (96 × 11×11×3 filters
// over a 227×227×3 input; roughly half a minute of emulated-FPGA
// arithmetic); without it a scaled workload preserving the ratios is used.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/reliable"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	which := fs.String("which", "all", "experiment to run: all|table1|figure3|figure4|intext|freeze|coverage|rollback|weights|guarantee")
	full := fs.Bool("full", false, "run Table 1 at the paper's full AlexNet conv1 dimensions")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	run := map[string]bool{}
	if *which == "all" {
		for _, k := range []string{"table1", "figure3", "figure4", "intext", "freeze", "coverage", "rollback", "weights", "guarantee"} {
			run[k] = true
		}
	} else {
		run[*which] = true
	}
	ran := false

	if run["table1"] {
		ran = true
		fmt.Println("## Table 1 — reliable convolution execution time")
		fmt.Println()
		res, err := experiments.RunTable1(experiments.Table1Config{Full: *full, Seed: *seed})
		if err != nil {
			return fmt.Errorf("table1: %w", err)
		}
		fmt.Println(res.Markdown())
		fmt.Println("Paper (Python, i9-9900): Algorithm 1 = 301.91 s, Algorithm 2 = 648.87 s (2.15×), native TF = 0.05 s, naive SAX = 1.942 s.")
		fmt.Println()
	}
	if run["figure3"] {
		ran = true
		fmt.Println("## Figure 3 — radial time series and SAX word of an angled stop sign")
		fmt.Println()
		res, err := experiments.RunFigure3(experiments.Figure3Config{Seed: *seed})
		if err != nil {
			return fmt.Errorf("figure3: %w", err)
		}
		fmt.Println(res.Markdown())
	}
	if run["figure4"] {
		ran = true
		fmt.Println("## Figure 4 — stop-class confidence per replaced first-layer filter")
		fmt.Println()
		res, err := experiments.RunFigure4(experiments.Figure4Config{Seed: *seed})
		if err != nil {
			return fmt.Errorf("figure4: %w", err)
		}
		fmt.Println(res.Markdown())
	}
	if run["intext"] {
		ran = true
		fmt.Println("## In-text — confusion matrices before/after Sobel replacement")
		fmt.Println()
		res, err := experiments.RunConfusionCompare(experiments.Figure4Config{Seed: *seed})
		if err != nil {
			return fmt.Errorf("intext: %w", err)
		}
		fmt.Println(res.Markdown())
	}
	if run["freeze"] {
		ran = true
		fmt.Println("## In-text — Sobel pre-initialisation freeze study")
		fmt.Println()
		res, err := experiments.RunFreezeStudy(experiments.Figure4Config{Seed: *seed})
		if err != nil {
			return fmt.Errorf("freeze: %w", err)
		}
		fmt.Println(res.Markdown())
		fmt.Println()
	}
	if run["coverage"] {
		ran = true
		fmt.Println("## Ablation A — redundancy-mode fault coverage")
		fmt.Println()
		rows, err := experiments.RunRedundancyCoverage(experiments.CoverageConfig{Seed: *seed})
		if err != nil {
			return fmt.Errorf("coverage: %w", err)
		}
		fmt.Println(experiments.CoverageMarkdown(rows))
		fmt.Println()
	}
	if run["rollback"] {
		ran = true
		fmt.Println("## Ablation B — rollback distance")
		fmt.Println()
		rows, err := experiments.RunRollbackAblation(experiments.RollbackConfig{Seed: *seed})
		if err != nil {
			return fmt.Errorf("rollback: %w", err)
		}
		fmt.Println(experiments.RollbackMarkdown(rows))
		fmt.Println()
	}
	if run["weights"] {
		ran = true
		fmt.Println("## Weight-memory SEU study (unprotected vs SECDED ECC)")
		fmt.Println()
		res, err := experiments.RunWeightFaultStudy(experiments.WeightFaultConfig{
			Train: experiments.Figure4Config{Seed: *seed},
		})
		if err != nil {
			return fmt.Errorf("weights: %w", err)
		}
		fmt.Println(res.Markdown())
	}
	if run["guarantee"] {
		ran = true
		fmt.Println("## Analytic reliability guarantee (first AlexNet conv layer)")
		fmt.Println()
		// 105,415,200 MACs → 2× as many overloaded operations.
		const ops = 2 * 105_415_200
		for _, mode := range []core.RedundancyMode{
			core.ModePlain, core.ModeTemporalDMR, core.ModeSpatialDMR, core.ModeTMR,
		} {
			g, err := core.ComputeGuarantee(core.GuaranteeParams{
				PerOpFaultProb: 1e-9, CollisionProb: 1.0 / 32, Mode: mode,
				BucketFactor: reliable.DefaultFactor, BucketCeiling: reliable.DefaultCeiling,
				OpsPerInference: ops,
			})
			if err != nil {
				return fmt.Errorf("guarantee: %w", err)
			}
			fmt.Println(g.String())
		}
		fmt.Println()
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *which)
	}
	return nil
}
