// Command hybridnet-sim runs the deterministic fleet simulator: scripted
// shards with piecewise service-time curves, a seeded virtual clock, and
// the real placement code (shard.Placer) and worker-side weight tracker
// (serve.WeightTracker) driven at probe cadence. It is how placement
// policies are compared without standing up a fleet — the same runs CI
// gates on, replayable byte-for-byte from a seed.
//
//	hybridnet-sim                                 # full builtin matrix, all policies
//	hybridnet-sim -scenario adversarial-flap      # one builtin, all policies
//	hybridnet-sim -scenario ./my-scenario.json    # a scripted scenario file
//	hybridnet-sim -policy minmax -table           # human-readable table instead of JSON
//	hybridnet-sim -list                           # builtin scenario names
//
// Output is the indented-JSON comparison report ([]sim.Comparison); the
// determinism guarantee is stated over these bytes: same scenarios, same
// policies, same seeds → identical output. -table renders the same data as
// an aligned text table for eyeballing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/sim"
)

func main() {
	fs := flag.NewFlagSet("hybridnet-sim", flag.ExitOnError)
	scenario := fs.String("scenario", "", "builtin scenario name or path to a scenario JSON file (default: every builtin)")
	policy := fs.String("policy", "", "single placement policy to run (default: all of "+strings.Join(sim.Policies(), ", ")+")")
	table := fs.Bool("table", false, "print an aligned text table instead of the JSON report")
	list := fs.Bool("list", false, "list builtin scenarios and exit")
	fs.Parse(os.Args[1:])

	if *list {
		for _, sc := range sim.Builtins() {
			fmt.Printf("%-22s %s\n", sc.Name, sc.Description)
		}
		return
	}

	scenarios := sim.Builtins()
	if *scenario != "" {
		sc, err := sim.Builtin(*scenario)
		if err != nil {
			// Not a builtin: treat it as a scenario file.
			sc, err = sim.LoadScenario(*scenario)
			if err != nil {
				fatal(err)
			}
		}
		scenarios = []sim.Scenario{sc}
	}
	policies := sim.Policies()
	if *policy != "" {
		policies = []string{*policy}
	}

	comps, err := sim.Matrix(scenarios, policies)
	if err != nil {
		fatal(err)
	}
	if *table {
		w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
		fmt.Fprintln(w, "scenario\tpolicy\tp50\tp99\tp999\tshed\tfailovers\tcompleted")
		for _, c := range comps {
			for _, r := range c.Results {
				fmt.Fprintf(w, "%s\t%s\t%v\t%v\t%v\t%d\t%d\t%d\n",
					c.Scenario, r.Policy,
					r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
					r.P999.Round(time.Microsecond), r.Shed, r.Failovers, r.Completed)
			}
		}
		w.Flush()
		return
	}
	report, err := sim.Report(comps)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(report)
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybridnet-sim:", err)
	os.Exit(1)
}
