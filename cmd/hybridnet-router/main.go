// Command hybridnet-router is the sharded serving plane: it spreads the
// hybridnetd HTTP API across N worker processes, each running its own model
// replica and micro-batching scheduler, and presents the same three
// endpoints a single daemon exposes.
//
//	POST /classify        routed to a shard: power-of-two-choices under the
//	                      -placement policy (p2c, weighted-p2c on -weights/
//	                      -adaptive-weights, or minmax on worker-advertised
//	                      weights), round-robin on ties; one automatic
//	                      failover on a dead or load-shedding (503) shard for
//	                      guaranteed and fast requests (budget never fails over)
//	GET  /healthz         router + fleet health (503 once no shard is routable)
//	GET  /stats           per-shard serve.Stats plus the serve.Merge aggregate
//	                      (fleet latency quantiles from merged histograms)
//	GET  /metrics         the fleet view in Prometheus text format: aggregate
//	                      serve counters plus per-shard breaker/restart series
//	GET  /debug/requests  fleet-wide flight recorder (every shard's dump
//	                      merged with the router's own)
//
// Every proxied /classify carries an X-Hybridnet-Trace ID (minted at this
// edge unless the client sent one) to the worker and back, with the worker's
// span breakdown in X-Hybridnet-Spans and the router's own attempts in
// X-Hybridnet-Router-Spans. The request's service class rides
// X-Hybridnet-Class (absent = -default-class, resolved once at this edge
// and forwarded in canonical form).
//
// The router either spawns and supervises its own workers (each started
// with -addr 127.0.0.1:0; the bound port is read from the worker's stdout
// report line) or attaches to workers already running elsewhere:
//
//	Spawn:   hybridnet-router -shards 4 -worker-bin ./hybridnetd -worker-args '-demo'
//	Attach:  hybridnet-router -attach http://10.0.0.1:8080,http://10.0.0.2:8080
//
// Shards are health-checked continuously; a shard that keeps failing is
// circuit-broken out of placement and re-admitted on the first successful
// probe. A spawned worker that dies is respawned with exponential backoff
// (-restart-backoff, up to -restart-max consecutive attempts before the
// shard is declared permanently down), so a SIGKILLed worker rejoins the
// fleet without operator action. SIGINT/SIGTERM drains the fleet: spawned
// workers get SIGTERM and drain their own schedulers before the router
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only via -debug-addr
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/logx"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed; -h is not an error
		}
		fmt.Fprintln(os.Stderr, "hybridnet-router:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hybridnet-router", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "router listen address")
	attach := fs.String("attach", "", "comma-separated worker base URLs to attach to (no spawning)")
	workerBin := fs.String("worker-bin", "", "hybridnetd binary to spawn workers from")
	shards := fs.Int("shards", 2, "number of workers to spawn (spawn mode)")
	workerArgs := fs.String("worker-args", "-demo", "space-separated extra args for each spawned worker")
	healthInterval := fs.Duration("health-interval", 250*time.Millisecond, "shard health-probe period")
	breaker := fs.Int("breaker", 3, "consecutive failures before a shard is circuit-broken")
	timeout := fs.Duration("timeout", 30*time.Second, "per-attempt proxy timeout")
	weights := fs.String("weights", "", "comma-separated per-shard capacity weights (empty = all equal)")
	adaptive := fs.Bool("adaptive-weights", true, "scale placement by each worker's reported per-image service time")
	placement := fs.String("placement", "weighted-p2c", "placement policy: p2c|weighted-p2c|minmax (minmax consumes each worker's self-advertised weight)")
	restartMax := fs.Int("restart-max", 5, "consecutive respawn attempts before a dead worker is permanently down (0 = default, negative disables respawn)")
	restartBackoff := fs.Duration("restart-backoff", 250*time.Millisecond, "initial respawn backoff (doubles per consecutive attempt)")
	gemmWorkers := fs.Int("gemm-workers", 1, "per-worker intra-GEMM parallelism, appended to spawned workers' args (spawn mode; 1 = off)")
	debugAddr := fs.String("debug-addr", "", "optional second listen address exposing net/http/pprof (empty = off)")
	traceSample := fs.Float64("trace-sample", 0, "fraction of proxied requests logged with their span breakdown (0 = off, 1 = all)")
	traceDepth := fs.Int("trace-depth", obs.DefaultRecorderDepth, "flight recorder depth: K slowest + K most recent traces kept for /debug/requests")
	logLevel := fs.String("log-level", "info", "log verbosity: debug|info|warn|error")
	defaultClass := fs.String("default-class", "guaranteed", "service class assumed when a request has no X-Hybridnet-Class header (guaranteed|fast|budget)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := logx.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := logx.New(os.Stderr, level)
	defClass, err := serve.ParseClass(*defaultClass)
	if err != nil {
		return fmt.Errorf("-default-class: %w", err)
	}

	cfg := shard.Config{
		HealthInterval:   *healthInterval,
		BreakerThreshold: *breaker,
		RequestTimeout:   *timeout,
		AdaptiveWeights:  *adaptive,
		Placement:        *placement,
		RestartMax:       *restartMax,
		RestartBackoff:   *restartBackoff,
		Logf:             logger.Logf,
		Log:              logger,
		TraceDepth:       *traceDepth,
		TraceSample:      *traceSample,
		DefaultClass:     defClass,
	}
	if *weights != "" {
		w, err := parseWeights(*weights)
		if err != nil {
			return err
		}
		cfg.Weights = w
	}
	var router *shard.Router
	switch {
	case *attach != "" && *workerBin != "":
		return fmt.Errorf("-attach and -worker-bin are mutually exclusive")
	case *attach != "":
		router, err = shard.New(splitList(*attach), cfg)
	case *workerBin != "":
		wargs := strings.Fields(*workerArgs)
		if *gemmWorkers != 1 {
			wargs = append(wargs, "-gemm-workers", strconv.Itoa(*gemmWorkers))
		}
		router, err = shard.Spawn(*workerBin, *shards, wargs, cfg)
	default:
		return fmt.Errorf("need -worker-bin (spawn workers) or -attach (use running workers)")
	}
	if err != nil {
		return err
	}
	// Whatever exit path run() takes from here, the spawned workers must not
	// be orphaned. Shutdown is idempotent, so the deliberate drain below and
	// this safety net coexist.
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := router.Shutdown(ctx); err != nil {
			logger.Warn("shutdown", "err", err)
		}
	}()

	readyCtx, readyCancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = router.WaitReady(readyCtx)
	readyCancel()
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: router.Mux()}
	logger.Info("listening", "addr", ln.Addr().String(), "shards", router.Shards(),
		"probe", *healthInterval, "breaker", *breaker)
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		logger.Info("pprof listening", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, nil); err != nil {
				logger.Warn("pprof server exited", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down", "draining_shards", router.Shards())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	rep := router.Report(shutdownCtx)
	if err := router.Shutdown(shutdownCtx); err != nil {
		return err
	}
	logger.Info("drained", "proxied", rep.Proxied, "failovers", rep.Failovers,
		"completed", rep.Aggregate.Completed, "batches", rep.Aggregate.Batches,
		"mean_batch", rep.Aggregate.MeanBatch)
	return nil
}

// parseWeights turns the -weights flag into shard.Config.Weights; the
// Router validates count and positivity against the shard count.
func parseWeights(s string) ([]float64, error) {
	parts := splitList(s)
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		w, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -weights entry %q: %w", p, err)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-weights has no entries")
	}
	return out, nil
}

// splitList splits a comma-separated flag value, tolerating whitespace and
// empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
