// Command hybridnet-router is the sharded serving plane: it spreads the
// hybridnetd HTTP API across N worker processes, each running its own model
// replica and micro-batching scheduler, and presents the same three
// endpoints a single daemon exposes.
//
//	POST /classify  routed to a shard: power-of-two-choices on live queue
//	                depth, round-robin on ties; one automatic failover on a
//	                dead or load-shedding (503) shard
//	GET  /healthz   router + fleet health (503 once no shard is routable)
//	GET  /stats     per-shard serve.Stats plus the serve.Merge aggregate
//
// The router either spawns and supervises its own workers (each started
// with -addr 127.0.0.1:0; the bound port is read from the worker's stdout
// report line) or attaches to workers already running elsewhere:
//
//	Spawn:   hybridnet-router -shards 4 -worker-bin ./hybridnetd -worker-args '-demo'
//	Attach:  hybridnet-router -attach http://10.0.0.1:8080,http://10.0.0.2:8080
//
// Shards are health-checked continuously; a shard that keeps failing is
// circuit-broken out of placement and re-admitted on the first successful
// probe. SIGINT/SIGTERM drains the fleet: spawned workers get SIGTERM and
// drain their own schedulers before the router exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/shard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hybridnet-router:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hybridnet-router", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "router listen address")
	attach := fs.String("attach", "", "comma-separated worker base URLs to attach to (no spawning)")
	workerBin := fs.String("worker-bin", "", "hybridnetd binary to spawn workers from")
	shards := fs.Int("shards", 2, "number of workers to spawn (spawn mode)")
	workerArgs := fs.String("worker-args", "-demo", "space-separated extra args for each spawned worker")
	healthInterval := fs.Duration("health-interval", 250*time.Millisecond, "shard health-probe period")
	breaker := fs.Int("breaker", 3, "consecutive failures before a shard is circuit-broken")
	timeout := fs.Duration("timeout", 30*time.Second, "per-attempt proxy timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := shard.Config{
		HealthInterval:   *healthInterval,
		BreakerThreshold: *breaker,
		RequestTimeout:   *timeout,
	}
	var router *shard.Router
	var err error
	switch {
	case *attach != "" && *workerBin != "":
		return fmt.Errorf("-attach and -worker-bin are mutually exclusive")
	case *attach != "":
		router, err = shard.New(splitList(*attach), cfg)
	case *workerBin != "":
		router, err = shard.Spawn(*workerBin, *shards, strings.Fields(*workerArgs), cfg)
	default:
		return fmt.Errorf("need -worker-bin (spawn workers) or -attach (use running workers)")
	}
	if err != nil {
		return err
	}
	// Whatever exit path run() takes from here, the spawned workers must not
	// be orphaned. Shutdown is idempotent, so the deliberate drain below and
	// this safety net coexist.
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := router.Shutdown(ctx); err != nil {
			log.Printf("hybridnet-router: shutdown: %v", err)
		}
	}()

	readyCtx, readyCancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = router.WaitReady(readyCtx)
	readyCancel()
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: router.Mux()}
	log.Printf("hybridnet-router listening on %s (%d shards, probe %v, breaker %d)",
		ln.Addr(), router.Shards(), *healthInterval, *breaker)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("hybridnet-router shutting down: draining %d shards", router.Shards())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	rep := router.Report(shutdownCtx)
	if err := router.Shutdown(shutdownCtx); err != nil {
		return err
	}
	log.Printf("hybridnet-router drained: %d proxied (%d failovers), fleet completed %d in %d batches (mean %.2f)",
		rep.Proxied, rep.Failovers, rep.Aggregate.Completed, rep.Aggregate.Batches, rep.Aggregate.MeanBatch)
	return nil
}

// splitList splits a comma-separated flag value, tolerating whitespace and
// empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
