package main

import (
	"reflect"
	"testing"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no -attach/-worker-bin accepted")
	}
	if err := run([]string{"-attach", "http://127.0.0.1:1", "-worker-bin", "x"}); err == nil {
		t.Error("-attach with -worker-bin accepted")
	}
	if err := run([]string{"-worker-bin", "/no/such/binary-xyz", "-shards", "1"}); err == nil {
		t.Error("unspawnable worker binary accepted")
	}
	if err := run([]string{"-attach", " , ,"}); err == nil {
		t.Error("attach list with no URLs accepted")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" http://a:1, http://b:2 ,,")
	want := []string{"http://a:1", "http://b:2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("splitList = %v, want %v", got, want)
	}
	if out := splitList(""); out != nil {
		t.Fatalf("empty list = %v", out)
	}
}
